// TraceSource: the minimal surface the simulation engines need from a
// workload, abstracted away from where the bytes live.
//
// A fully realized in-memory Trace is one implementation
// (InMemoryTraceSource); a packed on-disk trace file streaming 256-minute
// blocks is another (trace/trace_file.h). SimStream, ClusterSession and
// ArrivalDecoder consume this interface, so fleets too large to realize in
// RAM simulate straight off disk while the in-memory fast path keeps its
// exact behaviour — both sides produce bitwise-identical arrival streams
// (tests/trace_file_test.cc pins this differentially and against the
// seed-99 goldens).

#ifndef SPES_TRACE_TRACE_SOURCE_H_
#define SPES_TRACE_TRACE_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace spes {

/// \brief One function's arrivals within a single minute.
struct Invocation {
  uint32_t function = 0;  ///< index into the trace's function list
  uint32_t count = 0;     ///< number of arrivals in this minute (>= 1)
};

/// \brief Read-only minute-window access to a fleet's arrival stream.
///
/// Implementations must be deterministic: repeated FillArrivals() calls
/// over the same window yield identical buckets, and the bucket order
/// contract (ascending function id within a minute) matches what the
/// in-memory decode produces, so engines are bitwise-agnostic to the
/// backing store.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// \brief Common horizon of every function, in minutes.
  [[nodiscard]] virtual int num_minutes() const = 0;

  /// \brief Number of functions in the fleet.
  [[nodiscard]] virtual size_t num_functions() const = 0;

  /// \brief Static metadata of function `f` (unchecked index). The
  /// reference stays valid for the lifetime of the source.
  [[nodiscard]] virtual const FunctionMeta& function_meta(size_t f) const = 0;

  /// \brief Fills `buckets` with the arrivals of minutes [begin, end):
  /// buckets[i] lists minute begin+i's invoked functions in ascending
  /// function id order. The callee resizes `buckets` to at least end-begin
  /// entries and clears/overwrites the first end-begin of them (existing
  /// capacity is reused, so a caller looping over blocks allocates only on
  /// the first call). Requires 0 <= begin <= end <= num_minutes().
  virtual Status FillArrivals(int begin, int end,
                              std::vector<std::vector<Invocation>>* buckets) = 0;

  /// \brief Materializes the first `num_minutes` minutes as an in-memory
  /// Trace (counts beyond the prefix are absent, not zeroed — the returned
  /// trace's horizon IS `num_minutes`). Engines use this to train policies
  /// without realizing the full horizon. O(num_functions * num_minutes)
  /// memory — callers cap the prefix, not the fleet.
  virtual Result<Trace> MaterializePrefix(int num_minutes) = 0;
};

/// \brief TraceSource over a borrowed, fully realized Trace — the zero-copy
/// fast path. Carries the row-pointer cache + software-prefetch transpose
/// that ArrivalDecoder's block decode uses, so in-memory decoding performs
/// exactly as before the abstraction existed.
class InMemoryTraceSource final : public TraceSource {
 public:
  /// \brief Borrows `trace`, which must outlive the source.
  explicit InMemoryTraceSource(const Trace& trace) : trace_(&trace) {}

  [[nodiscard]] int num_minutes() const override {
    return trace_->num_minutes();
  }
  [[nodiscard]] size_t num_functions() const override {
    return trace_->num_functions();
  }
  [[nodiscard]] const FunctionMeta& function_meta(size_t f) const override {
    return trace_->function(f).meta;
  }

  Status FillArrivals(int begin, int end,
                      std::vector<std::vector<Invocation>>* buckets) override;

  Result<Trace> MaterializePrefix(int num_minutes) override;

  /// \brief The borrowed underlying trace.
  [[nodiscard]] const Trace& trace() const { return *trace_; }

 private:
  const Trace* trace_;
  /// rows_[f] = f's count vector; caching the data pointers turns the
  /// per-function FunctionTrace chase (struct load -> vector load -> data)
  /// into independent loads the CPU can overlap across functions.
  std::vector<const uint32_t*> rows_;
};

}  // namespace spes

#endif  // SPES_TRACE_TRACE_SOURCE_H_
