#include "trace/trace.h"

#include <algorithm>

namespace spes {

const char* TriggerTypeToString(TriggerType trigger) {
  switch (trigger) {
    case TriggerType::kHttp:
      return "http";
    case TriggerType::kTimer:
      return "timer";
    case TriggerType::kQueue:
      return "queue";
    case TriggerType::kStorage:
      return "storage";
    case TriggerType::kEvent:
      return "event";
    case TriggerType::kOrchestration:
      return "orchestration";
    case TriggerType::kOthers:
      return "others";
  }
  return "others";
}

TriggerType TriggerTypeFromString(const std::string& name) {
  if (name == "http") return TriggerType::kHttp;
  if (name == "timer") return TriggerType::kTimer;
  if (name == "queue") return TriggerType::kQueue;
  if (name == "storage") return TriggerType::kStorage;
  if (name == "event") return TriggerType::kEvent;
  if (name == "orchestration") return TriggerType::kOrchestration;
  return TriggerType::kOthers;
}

uint64_t FunctionTrace::TotalInvocations() const {
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  return total;
}

int64_t FunctionTrace::InvokedMinutes() const {
  return std::count_if(counts.begin(), counts.end(),
                       [](uint32_t c) { return c > 0; });
}

Status Trace::Add(FunctionTrace function) {
  if (static_cast<int>(function.counts.size()) != num_minutes_) {
    return Status::InvalidArgument(
        "function '" + function.meta.name + "' has " +
        std::to_string(function.counts.size()) + " slots, trace expects " +
        std::to_string(num_minutes_));
  }
  if (by_name_.contains(function.meta.name)) {
    return Status::AlreadyExists("duplicate function '" + function.meta.name +
                                 "'");
  }
  by_name_.emplace(function.meta.name, functions_.size());
  functions_.push_back(std::move(function));
  return Status::OK();
}

int64_t Trace::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int64_t>(it->second);
}

std::unordered_map<std::string, std::vector<size_t>> Trace::GroupByApp()
    const {
  std::unordered_map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < functions_.size(); ++i) {
    groups[functions_[i].meta.app].push_back(i);
  }
  return groups;
}

std::unordered_map<std::string, std::vector<size_t>> Trace::GroupByOwner()
    const {
  std::unordered_map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < functions_.size(); ++i) {
    groups[functions_[i].meta.owner].push_back(i);
  }
  return groups;
}

std::span<const uint32_t> Trace::Slice(size_t function_index, int begin,
                                       int end) const {
  begin = std::clamp(begin, 0, num_minutes_);
  end = std::clamp(end, begin, num_minutes_);
  const auto& counts = functions_[function_index].counts;
  return std::span<const uint32_t>(counts.data() + begin,
                                   static_cast<size_t>(end - begin));
}

size_t Trace::CountOwners() const {
  std::unordered_map<std::string, int> seen;
  for (const auto& f : functions_) seen.emplace(f.meta.owner, 0);
  return seen.size();
}

size_t Trace::CountApps() const {
  std::unordered_map<std::string, int> seen;
  for (const auto& f : functions_) seen.emplace(f.meta.app, 0);
  return seen.size();
}

}  // namespace spes
