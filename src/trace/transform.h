// Composable trace transforms: named, data-driven workload operators.
//
// A TransformSpec describes one operator over a realized Trace — scale the
// load, compress time, slice a window, filter by trigger, clone the fleet,
// inject a burst or a concept drift, thin invocations, keep only the top-k
// functions. Operators are registered in a TransformRegistry mirroring the
// policy registry (core/policy_registry.h): canonical lowercase names,
// typed ParamSpec schemas with defaults, and Result<> errors naming the
// offending field. An ordered chain of TransformSpecs turns one workload
// into a family of stressed variants as pure data, e.g.
//
//   load_scale{factor=2.0} | inject_burst{at=720,width=15,amplitude=40}
//
// which is exactly what TraceSpec::transforms (sim/scenario.h) applies
// after realizing a trace source. Every transform is deterministic: the
// stochastic ones (thin, burst/drift selection) draw from seeded streams
// keyed by function name, so a chain yields a bitwise-identical trace at
// any thread count and across runs.

#ifndef SPES_TRACE_TRANSFORM_H_
#define SPES_TRACE_TRANSFORM_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/param_spec.h"
#include "trace/trace.h"

namespace spes {

/// \brief A trace transform as data: canonical name plus parameter
/// overrides. Parameters not listed take the registered defaults.
using TransformSpec = NamedSpec;

/// \brief Validated parameters handed to a registered transform factory.
using TransformParams = ParamMap;

/// \brief Parses `name{param=value,...}` into a TransformSpec (same
/// grammar as policy specs; errors say "transform spec ...").
Result<TransformSpec> ParseTransformSpec(const std::string& text);

/// \brief Inverse of ParseTransformSpec: canonical `name{k=v,...}` form
/// with keys in lexicographic order; just `name` when no overrides.
std::string FormatTransformSpec(const TransformSpec& spec);

/// \brief Parses a '|'-separated chain of transform specs, e.g.
/// `load_scale{factor=2.0}|slice{end_minute=1440}`. Whitespace around '|'
/// is ignored; an empty string yields an empty chain.
Result<std::vector<TransformSpec>> ParseTransformChain(
    const std::string& text);

/// \brief Inverse of ParseTransformChain: specs joined with " | ", or ""
/// for an empty chain.
std::string FormatTransformChain(const std::vector<TransformSpec>& chain);

/// \brief A compiled transform: maps a trace to a new trace. Parameter
/// domains were checked when the registry built it; apply-time failures
/// (e.g. a slice outside the horizon) report InvalidArgument naming the
/// field and the actual horizon.
using TransformFn = std::function<Result<Trace>(const Trace&)>;

/// \brief Builds a TransformFn from validated parameters. May reject
/// out-of-domain values (e.g. a non-positive factor) with a Status.
using TransformFactory =
    std::function<Result<TransformFn>(const TransformParams&)>;

/// \brief Name -> (schema, factory) table for trace transforms.
///
/// Global() holds every built-in transform; additional registries can be
/// constructed freely, e.g. by tests.
class TransformRegistry {
 public:
  /// \brief One registered transform.
  struct Entry {
    /// Canonical lowercase identifier, e.g. "load_scale".
    std::string canonical_name;
    /// One-line human description for catalogs.
    std::string summary;
    /// Accepted parameters with defaults; order is the display order.
    std::vector<ParamSpec> params;
    TransformFactory factory;
  };

  /// \brief Adds an entry. Fails with AlreadyExists when the name is taken
  /// and InvalidArgument on an empty name, a missing factory, or a
  /// duplicated parameter declaration.
  Status Register(Entry entry);

  /// \brief Compiles `spec` into a TransformFn: unknown names yield
  /// NotFound (listing the registered alternatives); unknown parameters,
  /// type mismatches (ints coerce to doubles, nothing else converts) and
  /// rejected values yield InvalidArgument naming the offending field.
  [[nodiscard]] Result<TransformFn> Create(const TransformSpec& spec) const;

  /// \brief Convenience: Create(ParseTransformSpec(text)).
  [[nodiscard]] Result<TransformFn> CreateFromString(const std::string& text) const;

  /// \brief True when `name` is registered.
  [[nodiscard]] bool Contains(const std::string& name) const;

  /// \brief Registered canonical names in lexicographic order.
  [[nodiscard]] std::vector<std::string> Names() const;

  /// \brief Introspection: the entry for `name`, or nullptr when unknown.
  [[nodiscard]] const Entry* Find(const std::string& name) const;

  /// \brief The process-wide registry, with all built-in transforms
  /// registered on first use. Registration of additional entries is not
  /// synchronized; do it before fanning out worker threads.
  static TransformRegistry& Global();

 private:
  std::map<std::string, Entry> entries_;
};

/// \brief Applies `chain` to `trace` in order through the global registry.
/// Takes the trace by value — pass an lvalue to keep the original, move an
/// rvalue to avoid the copy. A failing step reports
/// `transform chain step <i> (<name>): <cause>` with the cause's status
/// code, so both registry errors (unknown name, bad parameter) and apply
/// errors (window outside horizon) stay precise.
Result<Trace> ApplyTransforms(Trace trace,
                              const std::vector<TransformSpec>& chain);

/// \brief Combines fleets over a common horizon into one trace. All input
/// traces must share num_minutes() and function names must be unique
/// across the union (InvalidArgument / AlreadyExists otherwise). The
/// registry's `merge{copies=}` transform self-merges renamed copies of a
/// single fleet; this free function combines *distinct* fleets (e.g. a
/// generated fleet plus a CSV import).
Result<Trace> MergeTraces(const std::vector<const Trace*>& traces);

}  // namespace spes

#endif  // SPES_TRACE_TRANSFORM_H_
