#include "trace/azure_csv.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

namespace spes {

namespace fs = std::filesystem;

namespace {

constexpr char kFilePrefix[] = "invocations_per_function_md.anon.d";

std::string DayFileName(int day) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s%02d.csv", kFilePrefix, day);
  return buf;
}

bool AllZero(const uint32_t* counts, int n) {
  return std::all_of(counts, counts + n, [](uint32_t c) { return c == 0; });
}

}  // namespace

std::string FormatAzureCsvLine(const FunctionMeta& meta,
                               const uint32_t* counts, int num_slots) {
  std::string line;
  line.reserve(static_cast<size_t>(num_slots) * 2 + 64);
  line += meta.owner;
  line += ',';
  line += meta.app;
  line += ',';
  line += meta.name;
  line += ',';
  line += TriggerTypeToString(meta.trigger);
  char buf[16];
  for (int i = 0; i < num_slots; ++i) {
    const int len = std::snprintf(buf, sizeof(buf), ",%u", counts[i]);
    line.append(buf, static_cast<size_t>(len));
  }
  return line;
}

Result<FunctionTrace> ParseAzureCsvLine(const std::string& line,
                                        int expected_slots) {
  FunctionTrace out;
  out.counts.reserve(static_cast<size_t>(expected_slots));
  size_t pos = 0;
  int field = 0;
  while (pos <= line.size()) {
    size_t comma = line.find(',', pos);
    if (comma == std::string::npos) comma = line.size();
    const std::string_view cell(line.data() + pos, comma - pos);
    switch (field) {
      case 0:
        out.meta.owner = std::string(cell);
        break;
      case 1:
        out.meta.app = std::string(cell);
        break;
      case 2:
        out.meta.name = std::string(cell);
        break;
      case 3:
        out.meta.trigger = TriggerTypeFromString(std::string(cell));
        break;
      default: {
        uint32_t value = 0;
        if (!cell.empty()) {
          auto [ptr, ec] =
              std::from_chars(cell.data(), cell.data() + cell.size(), value);
          if (ec != std::errc() || ptr != cell.data() + cell.size()) {
            return Status::IOError("bad count '" + std::string(cell) +
                                   "' in CSV line");
          }
        }
        out.counts.push_back(value);
        break;
      }
    }
    ++field;
    pos = comma + 1;
    if (comma == line.size()) break;
  }
  if (static_cast<int>(out.counts.size()) != expected_slots) {
    return Status::IOError("expected " + std::to_string(expected_slots) +
                           " slots, got " + std::to_string(out.counts.size()));
  }
  return out;
}

Status WriteAzureTraceDir(const Trace& trace, const std::string& dir) {
  if (trace.num_minutes() % kMinutesPerDay != 0) {
    return Status::InvalidArgument("trace horizon is not whole days");
  }
  const int days = trace.num_minutes() / kMinutesPerDay;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());

  for (int day = 1; day <= days; ++day) {
    const std::string path = dir + "/" + DayFileName(day);
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + path);
    out << "HashOwner,HashApp,HashFunction,Trigger";
    for (int i = 1; i <= kMinutesPerDay; ++i) out << ',' << i;
    out << '\n';
    const int begin = (day - 1) * kMinutesPerDay;
    for (const FunctionTrace& f : trace.functions()) {
      const uint32_t* slice = f.counts.data() + begin;
      const bool zero_day = AllZero(slice, kMinutesPerDay);
      // Keep never-invoked functions visible via a day-1 row.
      if (zero_day && !(day == 1 && f.TotalInvocations() == 0)) continue;
      out << FormatAzureCsvLine(f.meta, slice, kMinutesPerDay) << '\n';
    }
    if (!out) return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

Result<Trace> ReadAzureTraceDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("no such trace directory: " + dir);
  }
  // Collect day files in order.
  std::map<int, std::string> day_files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kFilePrefix, 0) != 0) continue;
    const size_t digits = std::strlen(kFilePrefix);
    const int day = std::atoi(name.c_str() + digits);
    if (day > 0) day_files[day] = entry.path().string();
  }
  if (day_files.empty()) {
    return Status::NotFound("no Azure trace CSVs under " + dir);
  }
  const int days = day_files.rbegin()->first;
  const int horizon = days * kMinutesPerDay;

  struct Accum {
    FunctionMeta meta;
    std::vector<uint32_t> counts;
  };
  std::map<std::string, Accum> by_name;  // ordered => deterministic output

  for (const auto& [day, path] : day_files) {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open " + path);
    std::string line;
    if (!std::getline(in, line)) {
      return Status::IOError("empty trace file " + path);
    }
    const int offset = (day - 1) * kMinutesPerDay;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      SPES_ASSIGN_OR_RETURN(FunctionTrace row,
                            ParseAzureCsvLine(line, kMinutesPerDay));
      Accum& acc = by_name[row.meta.name];
      if (acc.counts.empty()) {
        acc.meta = row.meta;
        acc.counts.assign(static_cast<size_t>(horizon), 0);
      }
      std::copy(row.counts.begin(), row.counts.end(),
                acc.counts.begin() + offset);
    }
  }

  Trace trace(horizon);
  for (auto& [name, acc] : by_name) {
    FunctionTrace f;
    f.meta = std::move(acc.meta);
    f.counts = std::move(acc.counts);
    SPES_RETURN_NOT_OK(trace.Add(std::move(f)));
  }
  return trace;
}

}  // namespace spes
