#include "trace/summary.h"

#include <algorithm>
#include <cmath>

namespace spes {

InvocationHistogram ComputeInvocationHistogram(const Trace& trace) {
  InvocationHistogram hist;
  hist.total_functions = static_cast<int64_t>(trace.num_functions());
  for (const FunctionTrace& f : trace.functions()) {
    const uint64_t total = f.TotalInvocations();
    hist.total_invocations += total;
    if (total == 0) {
      ++hist.zero_functions;
      continue;
    }
    const int bucket =
        static_cast<int>(std::floor(std::log10(static_cast<double>(total))));
    if (bucket >= static_cast<int>(hist.buckets.size())) {
      hist.buckets.resize(static_cast<size_t>(bucket) + 1, 0);
    }
    ++hist.buckets[static_cast<size_t>(bucket)];
  }
  return hist;
}

std::array<double, kNumTriggerTypes> ComputeTriggerMix(const Trace& trace) {
  std::array<double, kNumTriggerTypes> mix{};
  if (trace.num_functions() == 0) return mix;
  for (const FunctionTrace& f : trace.functions()) {
    mix[static_cast<size_t>(f.meta.trigger)] += 1.0;
  }
  for (double& m : mix) m /= static_cast<double>(trace.num_functions());
  return mix;
}

std::vector<size_t> FindConceptShiftExamples(const Trace& trace, int k) {
  struct Scored {
    size_t index;
    double score;
  };
  std::vector<Scored> scored;
  const int half = trace.num_minutes() / 2;
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    const auto& counts = trace.function(i).counts;
    uint64_t first = 0, second = 0;
    for (int t = 0; t < half; ++t) first += counts[static_cast<size_t>(t)];
    for (int t = half; t < trace.num_minutes(); ++t) {
      second += counts[static_cast<size_t>(t)];
    }
    const uint64_t total = first + second;
    if (total < 200) continue;  // need visible activity in both panes
    const double a = static_cast<double>(first) + 1.0;
    const double b = static_cast<double>(second) + 1.0;
    const double ratio = a > b ? a / b : b / a;
    scored.push_back({i, ratio});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });
  std::vector<size_t> out;
  for (const Scored& s : scored) {
    if (static_cast<int>(out.size()) >= k) break;
    out.push_back(s.index);
  }
  return out;
}

std::vector<size_t> FindTemporalLocalityExamples(const Trace& trace, int k,
                                                 int min_total,
                                                 int max_total) {
  std::vector<size_t> out;
  const double horizon = static_cast<double>(trace.num_minutes());
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    if (static_cast<int>(out.size()) >= k) break;
    const auto& counts = trace.function(i).counts;
    const uint64_t total = trace.function(i).TotalInvocations();
    if (total < static_cast<uint64_t>(min_total) ||
        total > static_cast<uint64_t>(max_total)) {
      continue;
    }
    // Measure concentration: active slots vs. horizon, and run structure.
    int64_t active = 0;
    int64_t runs = 0;
    bool in_run = false;
    for (uint32_t c : counts) {
      if (c > 0) {
        ++active;
        if (!in_run) {
          ++runs;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    if (active == 0) continue;
    const double active_fraction = static_cast<double>(active) / horizon;
    const double slots_per_run =
        static_cast<double>(active) / static_cast<double>(runs);
    // Few, multi-slot runs occupying a tiny share of the horizon.
    if (active_fraction < 0.02 && runs <= 24 && slots_per_run >= 2.0) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<uint64_t> BinSeries(const std::vector<uint32_t>& counts,
                                int num_bins) {
  std::vector<uint64_t> bins(static_cast<size_t>(std::max(num_bins, 1)), 0);
  if (counts.empty()) return bins;
  const double per_bin =
      static_cast<double>(counts.size()) / static_cast<double>(bins.size());
  for (size_t t = 0; t < counts.size(); ++t) {
    size_t b = static_cast<size_t>(static_cast<double>(t) / per_bin);
    if (b >= bins.size()) b = bins.size() - 1;
    bins[b] += counts[t];
  }
  return bins;
}

}  // namespace spes
