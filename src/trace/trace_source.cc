#include "trace/trace_source.h"

#include <cassert>

namespace spes {

Status InMemoryTraceSource::FillArrivals(
    int begin, int end, std::vector<std::vector<Invocation>>* buckets) {
  assert(begin >= 0 && begin <= end && end <= trace_->num_minutes());
  const size_t n = trace_->num_functions();
  const size_t len = static_cast<size_t>(end - begin);

  if (rows_.size() != n) {
    rows_.resize(n);
    for (size_t f = 0; f < n; ++f) rows_[f] = trace_->function(f).counts.data();
  }

  // One pass: read each function's window slice exactly once and append its
  // nonzero entries to the owning minute's bucket. Walking f in ascending
  // order keeps every bucket sorted by function id, matching the order the
  // seed's per-minute O(n) scan produced. The rows are contiguous per
  // function but scattered across the heap — a pattern the hardware
  // prefetcher resets on at every row — so software-prefetch the next
  // row's cache lines while scanning the current one.
  if (buckets->size() < len) buckets->resize(len);
  for (size_t i = 0; i < len; ++i) (*buckets)[i].clear();
  constexpr size_t kPrefetchRows = 4;
  constexpr size_t kLineWords = 16;  // 64-byte line / 4-byte count
  for (size_t f = 0; f < n; ++f) {
    if (f + kPrefetchRows < n) {
      const uint32_t* next = rows_[f + kPrefetchRows] + begin;
      for (size_t i = 0; i < len; i += kLineWords) __builtin_prefetch(next + i);
    }
    const uint32_t* counts = rows_[f] + begin;
    for (size_t i = 0; i < len; ++i) {
      if (counts[i] > 0) {
        (*buckets)[i].push_back(
            Invocation{static_cast<uint32_t>(f), counts[i]});
      }
    }
  }
  return Status::OK();
}

Result<Trace> InMemoryTraceSource::MaterializePrefix(int num_minutes) {
  if (num_minutes < 0 || num_minutes > trace_->num_minutes()) {
    return Status::InvalidArgument(
        "MaterializePrefix: prefix of " + std::to_string(num_minutes) +
        " minutes is outside the source horizon of " +
        std::to_string(trace_->num_minutes()) + " minutes");
  }
  Trace prefix(num_minutes);
  for (size_t f = 0; f < trace_->num_functions(); ++f) {
    const FunctionTrace& full = trace_->function(f);
    FunctionTrace cut;
    cut.meta = full.meta;
    cut.counts.assign(full.counts.begin(), full.counts.begin() + num_minutes);
    SPES_RETURN_NOT_OK(prefix.Add(std::move(cut)));
  }
  return prefix;
}

}  // namespace spes
