#include "trace/trace_file.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace spes {
namespace {

// ---------------------------------------------------------------------------
// Format constants. The header is 72 fixed little-endian bytes:
//   0   8  magic "SPESTRCF"
//   8   4  format version (=1)
//  12   4  flags (bit0: writer had compression enabled; others reserved)
//  16   4  num_minutes        (>= 1, <= INT32_MAX)
//  20   4  block_minutes      (in [1, 65535])
//  24   8  num_functions      (<= UINT32_MAX)
//  32   8  total_invocations  (must equal the function-table sum)
//  40   8  function table offset (= 72)
//  48   8  block index offset
//  56   8  blocks offset
//  64   8  file size
// ---------------------------------------------------------------------------
constexpr char kMagic[8] = {'S', 'P', 'E', 'S', 'T', 'R', 'C', 'F'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kFlagCompression = 1u;
constexpr uint64_t kHeaderBytes = 72;
constexpr uint64_t kIndexEntryBytes = 17;  // u64 + u32 + u32 + u8
/// Hard cap on a decoded block's payload so a hostile index entry cannot
/// drive a multi-gigabyte allocation. 2^28 bytes comfortably fits any
/// legitimate block (even 1M functions x 256 minutes of sparse events).
constexpr uint32_t kMaxBlockRawBytes = 1u << 28;
constexpr uint8_t kCodecRaw = 0;
constexpr uint8_t kCodecLz = 1;

// ---------------------------------------------------------------------------
// Per-block LZ codec, LZ4-block-style: a sequence is a token byte (high
// nibble = literal run, low nibble = match length - 4, each extended by
// 255-runs when saturated), the literal bytes, then a u16le match distance.
// The final sequence is literals-only (the stream simply ends after them).
// Self-contained so the file format has zero external dependencies; the
// decoder is fully bounds-checked and must reproduce exactly `raw_len`
// bytes.
// ---------------------------------------------------------------------------
constexpr size_t kLzMinMatch = 4;
constexpr size_t kLzMaxDistance = 65535;
/// The last bytes of a block are always emitted as literals, so the match
/// extension loop never reads past the input.
constexpr size_t kLzTailLiterals = 5;
constexpr uint32_t kLzHashSize = 1u << 13;

uint32_t LzLoad32(const char* p) {
  // Explicit little-endian load: the compressed bytes are byte-for-byte
  // identical across hosts, keeping packed files deterministic everywhere.
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

uint32_t LzHash(const char* p) {
  return (LzLoad32(p) * 2654435761u) >> (32 - 13);
}

void LzPutRun(size_t rest, std::string* out) {
  while (rest >= 255) {
    out->push_back(static_cast<char>(255));
    rest -= 255;
  }
  out->push_back(static_cast<char>(rest));
}

std::string LzCompress(const std::string& in) {
  std::string out;
  const size_t n = in.size();
  size_t anchor = 0;

  auto emit = [&](size_t lit_end, size_t match_len, size_t distance) {
    const size_t lit = lit_end - anchor;
    const size_t match_extra = match_len == 0 ? 0 : match_len - kLzMinMatch;
    uint8_t token =
        static_cast<uint8_t>(std::min<size_t>(lit, 15) << 4);
    if (match_len != 0) {
      token |= static_cast<uint8_t>(std::min<size_t>(match_extra, 15));
    }
    out.push_back(static_cast<char>(token));
    if (lit >= 15) LzPutRun(lit - 15, &out);
    out.append(in, anchor, lit);
    if (match_len != 0) {
      out.push_back(static_cast<char>(distance & 0xff));
      out.push_back(static_cast<char>(distance >> 8));
      if (match_extra >= 15) LzPutRun(match_extra - 15, &out);
    }
  };

  if (n > kLzMinMatch + kLzTailLiterals) {
    std::vector<int64_t> table(kLzHashSize, -1);
    const size_t limit = n - kLzTailLiterals;
    size_t i = 0;
    while (i + kLzMinMatch <= limit) {
      const uint32_t h = LzHash(in.data() + i);
      const int64_t cand = table[h];
      table[h] = static_cast<int64_t>(i);
      if (cand >= 0 && i - static_cast<size_t>(cand) <= kLzMaxDistance &&
          LzLoad32(in.data() + cand) == LzLoad32(in.data() + i)) {
        size_t len = kLzMinMatch;
        while (i + len < limit &&
               in[static_cast<size_t>(cand) + len] == in[i + len]) {
          ++len;
        }
        emit(i, len, i - static_cast<size_t>(cand));
        i += len;
        anchor = i;
      } else {
        ++i;
      }
    }
  }
  emit(n, 0, 0);
  return out;
}

Status LzDecompress(const std::string& in, size_t raw_len, std::string* out) {
  out->clear();
  out->reserve(raw_len);
  const size_t n = in.size();
  size_t pos = 0;

  auto run = [&](uint64_t base) -> Result<uint64_t> {
    uint64_t value = base;
    uint8_t byte = 0;
    do {
      if (pos >= n) {
        return Status::InvalidArgument(
            "LZ block: truncated run-length extension");
      }
      byte = static_cast<uint8_t>(in[pos++]);
      // At most one extension byte per input byte, so `value` is bounded
      // by 15 + 255 * in.size() and cannot overflow uint64.
      value += byte;
    } while (byte == 255);
    return value;
  };

  while (pos < n) {
    const uint8_t token = static_cast<uint8_t>(in[pos++]);
    uint64_t lit = token >> 4;
    if (lit == 15) {
      SPES_ASSIGN_OR_RETURN(lit, run(15));
    }
    if (lit > n - pos) {
      return Status::InvalidArgument(
          "LZ block: literal run past the stored bytes");
    }
    if (lit > raw_len - out->size()) {
      return Status::InvalidArgument(
          "LZ block: literal run past the declared raw size");
    }
    out->append(in, pos, static_cast<size_t>(lit));
    pos += static_cast<size_t>(lit);
    if (pos == n) break;  // final, literals-only sequence
    if (n - pos < 2) {
      return Status::InvalidArgument("LZ block: truncated match distance");
    }
    const size_t distance =
        static_cast<size_t>(static_cast<uint8_t>(in[pos])) |
        (static_cast<size_t>(static_cast<uint8_t>(in[pos + 1])) << 8);
    pos += 2;
    if (distance == 0 || distance > out->size()) {
      return Status::InvalidArgument(
          "LZ block: match distance outside the decoded prefix");
    }
    uint64_t match_len = (token & 0xf) + kLzMinMatch;
    if ((token & 0xf) == 15) {
      SPES_ASSIGN_OR_RETURN(match_len, run(match_len));
    }
    if (match_len > raw_len - out->size()) {
      return Status::InvalidArgument(
          "LZ block: match run past the declared raw size");
    }
    // Byte-at-a-time so overlapping matches (distance < length) replicate,
    // exactly like the reference LZ4 semantics.
    size_t src = out->size() - distance;
    for (uint64_t k = 0; k < match_len; ++k) {
      out->push_back((*out)[src + static_cast<size_t>(k)]);
    }
  }
  if (out->size() != raw_len) {
    return Status::InvalidArgument(
        "LZ block: decoded " + std::to_string(out->size()) +
        " bytes, index declared " + std::to_string(raw_len));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

TraceFileWriter::TraceFileWriter(int num_minutes,
                                 const TraceFileOptions& options)
    : options_(options),
      num_minutes_(num_minutes),
      num_blocks_((num_minutes + options.block_minutes - 1) /
                  options.block_minutes) {
  block_payloads_.resize(static_cast<size_t>(num_blocks_));
}

Result<TraceFileWriter> TraceFileWriter::Create(int num_minutes,
                                                TraceFileOptions options) {
  if (num_minutes <= 0) {
    return Status::InvalidArgument(
        "trace file requires a positive horizon, got " +
        std::to_string(num_minutes) + " minutes");
  }
  if (options.block_minutes < 1 || options.block_minutes > 65535) {
    return Status::InvalidArgument(
        "trace file block_minutes must be in [1, 65535], got " +
        std::to_string(options.block_minutes));
  }
  return TraceFileWriter(num_minutes, options);
}

Status TraceFileWriter::Add(const FunctionMeta& meta,
                            std::span<const uint32_t> counts) {
  if (counts.size() != static_cast<size_t>(num_minutes_)) {
    return Status::InvalidArgument(
        "function '" + meta.name + "' has " + std::to_string(counts.size()) +
        " count minutes, writer horizon is " + std::to_string(num_minutes_));
  }
  if (num_functions_ == UINT32_MAX) {
    return Status::InvalidArgument(
        "trace file function count exceeds the uint32 index space");
  }

  uint64_t total = 0;
  for (const uint32_t c : counts) total += c;
  total_invocations_ += total;

  table_.PutVarBytes(meta.owner);
  table_.PutVarBytes(meta.app);
  table_.PutVarBytes(meta.name);
  table_.PutU8(static_cast<uint8_t>(meta.trigger));
  table_.PutVarU64(total);

  // Per block: varint event count, then (minute delta, count) varint pairs.
  // The first delta is relative to the block start (>= 0), subsequent
  // deltas are strictly positive — the canonical form the reader enforces.
  const int bm = options_.block_minutes;
  for (int b = 0; b < num_blocks_; ++b) {
    const int begin = b * bm;
    const int end = std::min(begin + bm, num_minutes_);
    BinaryWriter& block = block_payloads_[static_cast<size_t>(b)];
    uint32_t events = 0;
    for (int t = begin; t < end; ++t) {
      if (counts[static_cast<size_t>(t)] > 0) ++events;
    }
    block.PutVarU32(events);
    int prev = -1;
    for (int t = begin; t < end; ++t) {
      const uint32_t c = counts[static_cast<size_t>(t)];
      if (c == 0) continue;
      block.PutVarU32(static_cast<uint32_t>(prev < 0 ? t - begin : t - prev));
      block.PutVarU32(c);
      prev = t;
    }
  }
  ++num_functions_;
  return Status::OK();
}

Result<std::string> TraceFileWriter::ToBytes(TraceFileStats* stats) {
  std::vector<std::string> stored(static_cast<size_t>(num_blocks_));
  std::vector<uint32_t> raw_bytes(static_cast<size_t>(num_blocks_), 0);
  std::vector<uint8_t> codec(static_cast<size_t>(num_blocks_), kCodecRaw);
  uint64_t payload_raw = 0;
  uint64_t payload_stored = 0;
  for (int b = 0; b < num_blocks_; ++b) {
    std::string raw = block_payloads_[static_cast<size_t>(b)].Take();
    if (raw.size() > kMaxBlockRawBytes) {
      return Status::InvalidArgument(
          "trace file block " + std::to_string(b) + " encodes to " +
          std::to_string(raw.size()) + " bytes, over the " +
          std::to_string(kMaxBlockRawBytes) +
          "-byte block cap; use a smaller block_minutes");
    }
    raw_bytes[static_cast<size_t>(b)] = static_cast<uint32_t>(raw.size());
    payload_raw += raw.size();
    if (options_.compress && raw.size() >= 32) {
      std::string lz = LzCompress(raw);
      if (lz.size() < raw.size()) {
        stored[static_cast<size_t>(b)] = std::move(lz);
        codec[static_cast<size_t>(b)] = kCodecLz;
      } else {
        stored[static_cast<size_t>(b)] = std::move(raw);
      }
    } else {
      stored[static_cast<size_t>(b)] = std::move(raw);
    }
    payload_stored += stored[static_cast<size_t>(b)].size();
  }

  const std::string table = table_.Take();
  const uint64_t table_offset = kHeaderBytes;
  const uint64_t index_offset = table_offset + table.size();
  const uint64_t blocks_offset =
      index_offset + kIndexEntryBytes * static_cast<uint64_t>(num_blocks_);
  const uint64_t file_size = blocks_offset + payload_stored;

  BinaryWriter out;
  for (const char c : kMagic) out.PutU8(static_cast<uint8_t>(c));
  out.PutU32(kFormatVersion);
  out.PutU32(options_.compress ? kFlagCompression : 0);
  out.PutU32(static_cast<uint32_t>(num_minutes_));
  out.PutU32(static_cast<uint32_t>(options_.block_minutes));
  out.PutU64(num_functions_);
  out.PutU64(total_invocations_);
  out.PutU64(table_offset);
  out.PutU64(index_offset);
  out.PutU64(blocks_offset);
  out.PutU64(file_size);

  std::string bytes = out.Take();
  bytes.reserve(static_cast<size_t>(file_size));
  bytes.append(table);

  BinaryWriter index;
  uint64_t cursor = blocks_offset;
  for (int b = 0; b < num_blocks_; ++b) {
    index.PutU64(cursor);
    index.PutU32(static_cast<uint32_t>(stored[static_cast<size_t>(b)].size()));
    index.PutU32(raw_bytes[static_cast<size_t>(b)]);
    index.PutU8(codec[static_cast<size_t>(b)]);
    cursor += stored[static_cast<size_t>(b)].size();
  }
  bytes.append(index.data());
  for (int b = 0; b < num_blocks_; ++b) {
    bytes.append(stored[static_cast<size_t>(b)]);
  }

  if (stats != nullptr) {
    stats->num_functions = num_functions_;
    stats->num_minutes = static_cast<uint32_t>(num_minutes_);
    stats->total_invocations = total_invocations_;
    stats->file_bytes = file_size;
    stats->metadata_bytes = blocks_offset;
    stats->payload_raw_bytes = payload_raw;
    stats->payload_stored_bytes = payload_stored;
  }
  return bytes;
}

Result<TraceFileStats> TraceFileWriter::WriteTo(const std::string& path) {
  TraceFileStats stats;
  SPES_ASSIGN_OR_RETURN(const std::string bytes, ToBytes(&stats));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out.good()) {
    return Status::IOError("short write to trace file '" + path + "'");
  }
  return stats;
}

Result<TraceFileStats> WriteTraceFile(const Trace& trace,
                                      const std::string& path,
                                      const TraceFileOptions& options) {
  SPES_ASSIGN_OR_RETURN(TraceFileWriter writer,
                        TraceFileWriter::Create(trace.num_minutes(), options));
  for (size_t f = 0; f < trace.num_functions(); ++f) {
    const FunctionTrace& fn = trace.function(f);
    SPES_RETURN_NOT_OK(writer.Add(
        fn.meta, std::span<const uint32_t>(fn.counts.data(),
                                           fn.counts.size())));
  }
  return writer.WriteTo(path);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TraceFileSource>> TraceFileSource::Open(
    const std::string& path) {
  std::unique_ptr<TraceFileSource> source(new TraceFileSource());
  source->path_ = path;
  source->file_.open(path, std::ios::binary);
  if (!source->file_) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  source->file_.seekg(0, std::ios::end);
  const std::streamoff size = source->file_.tellg();
  if (size < 0) {
    return Status::IOError("cannot size trace file '" + path + "'");
  }
  SPES_RETURN_NOT_OK(source->ParseMetadata(static_cast<uint64_t>(size)));
  return source;
}

Result<std::unique_ptr<TraceFileSource>> TraceFileSource::FromBytes(
    std::string bytes) {
  std::unique_ptr<TraceFileSource> source(new TraceFileSource());
  source->from_bytes_ = true;
  source->bytes_ = std::move(bytes);
  SPES_RETURN_NOT_OK(source->ParseMetadata(source->bytes_.size()));
  return source;
}

Status TraceFileSource::ReadAt(uint64_t offset, size_t size,
                               std::string* out) {
  if (from_bytes_) {
    // Callers validated offset + size against the image during
    // ParseMetadata, so this never reads out of bounds.
    out->assign(bytes_, static_cast<size_t>(offset), size);
    return Status::OK();
  }
  out->resize(size);
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(offset));
  file_.read(out->data(), static_cast<std::streamsize>(size));
  if (file_.gcount() != static_cast<std::streamsize>(size)) {
    return Status::IOError(
        "trace file '" + path_ + "': short read of " + std::to_string(size) +
        " bytes at offset " + std::to_string(offset) +
        " (file changed underneath the reader?)");
  }
  return Status::OK();
}

Status TraceFileSource::ParseMetadata(uint64_t file_size) {
  const std::string where =
      path_.empty() ? "trace file" : "trace file '" + path_ + "'";
  if (file_size < kHeaderBytes) {
    return Status::InvalidArgument(
        where + ": truncated header (" + std::to_string(file_size) +
        " bytes, a valid file has at least " + std::to_string(kHeaderBytes) +
        ")");
  }

  std::string head;
  SPES_RETURN_NOT_OK(ReadAt(0, kHeaderBytes, &head));
  BinaryReader reader(head);
  for (const char expected : kMagic) {
    SPES_ASSIGN_OR_RETURN(const uint8_t got, reader.U8());
    if (got != static_cast<uint8_t>(expected)) {
      return Status::InvalidArgument(where +
                                     ": bad magic, not a SPES trace file");
    }
  }
  SPES_ASSIGN_OR_RETURN(const uint32_t version, reader.U32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        where + ": unsupported format version " + std::to_string(version) +
        " (this reader supports version " + std::to_string(kFormatVersion) +
        ")");
  }
  SPES_ASSIGN_OR_RETURN(const uint32_t flags, reader.U32());
  if ((flags & ~kFlagCompression) != 0) {
    return Status::InvalidArgument(
        where + ": unknown header flag bits (" +
        std::to_string(flags & ~kFlagCompression) +
        "); refusing to guess at a future format");
  }
  SPES_ASSIGN_OR_RETURN(const uint32_t num_minutes, reader.U32());
  if (num_minutes == 0 ||
      num_minutes > static_cast<uint32_t>(INT32_MAX)) {
    return Status::InvalidArgument(where + ": invalid horizon of " +
                                   std::to_string(num_minutes) + " minutes");
  }
  SPES_ASSIGN_OR_RETURN(const uint32_t block_minutes, reader.U32());
  if (block_minutes < 1 || block_minutes > 65535) {
    return Status::InvalidArgument(
        where + ": block_minutes " + std::to_string(block_minutes) +
        " outside [1, 65535]");
  }
  SPES_ASSIGN_OR_RETURN(const uint64_t num_functions, reader.U64());
  if (num_functions > UINT32_MAX) {
    return Status::InvalidArgument(
        where + ": " + std::to_string(num_functions) +
        " functions overflow the uint32 index space");
  }
  SPES_ASSIGN_OR_RETURN(const uint64_t total_invocations, reader.U64());
  SPES_ASSIGN_OR_RETURN(const uint64_t table_offset, reader.U64());
  SPES_ASSIGN_OR_RETURN(const uint64_t index_offset, reader.U64());
  SPES_ASSIGN_OR_RETURN(const uint64_t blocks_offset, reader.U64());
  SPES_ASSIGN_OR_RETURN(const uint64_t declared_size, reader.U64());

  if (declared_size != file_size) {
    return Status::InvalidArgument(
        where + ": header declares " + std::to_string(declared_size) +
        " bytes but the file has " + std::to_string(file_size));
  }
  if (table_offset != kHeaderBytes || index_offset < table_offset ||
      blocks_offset < index_offset || blocks_offset > file_size) {
    return Status::InvalidArgument(where + ": section offsets out of order");
  }
  const uint64_t num_blocks =
      (static_cast<uint64_t>(num_minutes) + block_minutes - 1) /
      block_minutes;
  if (blocks_offset - index_offset != num_blocks * kIndexEntryBytes) {
    return Status::InvalidArgument(
        where + ": block index spans " +
        std::to_string(blocks_offset - index_offset) + " bytes, expected " +
        std::to_string(num_blocks * kIndexEntryBytes) + " for " +
        std::to_string(num_blocks) + " blocks");
  }
  // The smallest table entry is 5 bytes (three empty varint strings, the
  // trigger byte, a one-byte total), bounding the function count before
  // any per-function allocation happens.
  const uint64_t table_size = index_offset - table_offset;
  if (num_functions > table_size / 5) {
    return Status::InvalidArgument(
        where + ": function table of " + std::to_string(table_size) +
        " bytes is too small for " + std::to_string(num_functions) +
        " functions");
  }

  std::string table;
  SPES_RETURN_NOT_OK(
      ReadAt(table_offset, static_cast<size_t>(table_size), &table));
  BinaryReader table_reader(table);
  metas_.reserve(static_cast<size_t>(num_functions));
  totals_.reserve(static_cast<size_t>(num_functions));
  uint64_t total_check = 0;
  for (uint64_t f = 0; f < num_functions; ++f) {
    FunctionMeta meta;
    SPES_ASSIGN_OR_RETURN(meta.owner, table_reader.VarBytes());
    SPES_ASSIGN_OR_RETURN(meta.app, table_reader.VarBytes());
    SPES_ASSIGN_OR_RETURN(meta.name, table_reader.VarBytes());
    SPES_ASSIGN_OR_RETURN(const uint8_t trigger, table_reader.U8());
    if (trigger >= kNumTriggerTypes) {
      return Status::InvalidArgument(
          where + ": function " + std::to_string(f) +
          " has invalid trigger type " + std::to_string(trigger));
    }
    meta.trigger = static_cast<TriggerType>(trigger);
    SPES_ASSIGN_OR_RETURN(const uint64_t total, table_reader.VarU64());
    total_check += total;
    metas_.push_back(std::move(meta));
    totals_.push_back(total);
  }
  if (!table_reader.AtEnd()) {
    return Status::InvalidArgument(
        where + ": " + std::to_string(table_reader.remaining()) +
        " trailing bytes after the function table");
  }
  if (total_check != total_invocations) {
    return Status::InvalidArgument(
        where + ": function totals sum to " + std::to_string(total_check) +
        " but the header declares " + std::to_string(total_invocations) +
        " invocations");
  }

  std::string index;
  SPES_RETURN_NOT_OK(ReadAt(index_offset,
                            static_cast<size_t>(blocks_offset - index_offset),
                            &index));
  BinaryReader index_reader(index);
  index_.reserve(static_cast<size_t>(num_blocks));
  uint64_t cursor = blocks_offset;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    BlockEntry entry;
    SPES_ASSIGN_OR_RETURN(entry.offset, index_reader.U64());
    SPES_ASSIGN_OR_RETURN(entry.stored_bytes, index_reader.U32());
    SPES_ASSIGN_OR_RETURN(entry.raw_bytes, index_reader.U32());
    SPES_ASSIGN_OR_RETURN(entry.codec, index_reader.U8());
    const std::string at = where + ": block " + std::to_string(b);
    if (entry.codec > kCodecLz) {
      return Status::InvalidArgument(at + " uses unknown codec " +
                                     std::to_string(entry.codec));
    }
    if (entry.raw_bytes > kMaxBlockRawBytes) {
      return Status::InvalidArgument(
          at + " declares " + std::to_string(entry.raw_bytes) +
          " raw bytes, over the " + std::to_string(kMaxBlockRawBytes) +
          "-byte cap");
    }
    if (entry.raw_bytes < num_functions) {
      return Status::InvalidArgument(
          at + " declares " + std::to_string(entry.raw_bytes) +
          " raw bytes, below the one-byte-per-function minimum of " +
          std::to_string(num_functions));
    }
    if (entry.codec == kCodecRaw && entry.stored_bytes != entry.raw_bytes) {
      return Status::InvalidArgument(
          at + " is stored raw but stored size " +
          std::to_string(entry.stored_bytes) + " != raw size " +
          std::to_string(entry.raw_bytes));
    }
    if (entry.codec == kCodecLz && entry.stored_bytes >= entry.raw_bytes) {
      return Status::InvalidArgument(
          at + " is compressed but not smaller than raw (" +
          std::to_string(entry.stored_bytes) + " >= " +
          std::to_string(entry.raw_bytes) + ")");
    }
    // Blocks are stored contiguously in index order, so each entry's
    // offset is forced; enforcing that kills overlap/past-EOF games in
    // one check (the final cursor must land exactly on file_size).
    if (entry.offset != cursor) {
      return Status::InvalidArgument(
          at + " starts at offset " + std::to_string(entry.offset) +
          ", expected " + std::to_string(cursor));
    }
    cursor += entry.stored_bytes;
    if (cursor > file_size) {
      return Status::InvalidArgument(at + " extends past the end of file");
    }
    index_.push_back(entry);
    stats_.payload_raw_bytes += entry.raw_bytes;
    stats_.payload_stored_bytes += entry.stored_bytes;
  }
  if (!index_reader.AtEnd()) {
    return Status::InvalidArgument(where +
                                   ": trailing bytes after the block index");
  }
  if (cursor != file_size) {
    return Status::InvalidArgument(
        where + ": blocks end at offset " + std::to_string(cursor) +
        " but the file has " + std::to_string(file_size) + " bytes");
  }

  num_minutes_ = static_cast<int>(num_minutes);
  block_minutes_ = static_cast<int>(block_minutes);
  stats_.num_functions = num_functions;
  stats_.num_minutes = num_minutes;
  stats_.total_invocations = total_invocations;
  stats_.file_bytes = file_size;
  stats_.metadata_bytes = blocks_offset;
  return Status::OK();
}

Status TraceFileSource::EnsureBlockDecoded(int b) {
  if (cached_block_ == b) return Status::OK();
  cached_block_ = -1;

  const BlockEntry& entry = index_[static_cast<size_t>(b)];
  SPES_RETURN_NOT_OK(ReadAt(entry.offset, entry.stored_bytes,
                            &stored_scratch_));
  const std::string* raw = &stored_scratch_;
  if (entry.codec == kCodecLz) {
    Status decompressed =
        LzDecompress(stored_scratch_, entry.raw_bytes, &raw_scratch_);
    if (!decompressed.ok()) {
      return Status(decompressed.code(),
                    "trace file block " + std::to_string(b) + ": " +
                        decompressed.message());
    }
    raw = &raw_scratch_;
  }

  const int begin = b * block_minutes_;
  const int len = std::min(block_minutes_, num_minutes_ - begin);
  if (block_buckets_.size() < static_cast<size_t>(len)) {
    block_buckets_.resize(static_cast<size_t>(len));
  }
  for (int i = 0; i < len; ++i) block_buckets_[static_cast<size_t>(i)].clear();

  const std::string at = "trace file block " + std::to_string(b);
  BinaryReader reader(*raw);
  const size_t n = metas_.size();
  for (size_t f = 0; f < n; ++f) {
    // Each event is at least two varint bytes (delta + count).
    SPES_ASSIGN_OR_RETURN(const uint64_t events, reader.VarLength(2));
    int prev = -1;
    for (uint64_t e = 0; e < events; ++e) {
      SPES_ASSIGN_OR_RETURN(const uint32_t gap, reader.VarU32());
      SPES_ASSIGN_OR_RETURN(const uint32_t count, reader.VarU32());
      if (count == 0) {
        return Status::InvalidArgument(
            at + ": zero-count event for function " + std::to_string(f));
      }
      if (prev >= 0 && gap == 0) {
        return Status::InvalidArgument(
            at + ": non-increasing minute delta for function " +
            std::to_string(f));
      }
      const int64_t minute =
          prev < 0 ? static_cast<int64_t>(gap)
                   : static_cast<int64_t>(prev) + gap;
      if (minute >= len) {
        return Status::InvalidArgument(
            at + ": event minute " + std::to_string(minute) +
            " past the block's " + std::to_string(len) + " minutes");
      }
      block_buckets_[static_cast<size_t>(minute)].push_back(
          Invocation{static_cast<uint32_t>(f), count});
      prev = static_cast<int>(minute);
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        at + ": " + std::to_string(reader.remaining()) +
        " trailing bytes after the event chunks");
  }
  cached_block_ = b;
  return Status::OK();
}

Status TraceFileSource::FillArrivals(
    int begin, int end, std::vector<std::vector<Invocation>>* buckets) {
  if (begin < 0 || end < begin || end > num_minutes_) {
    return Status::InvalidArgument(
        "FillArrivals: window [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") outside the horizon of " +
        std::to_string(num_minutes_) + " minutes");
  }
  const size_t len = static_cast<size_t>(end - begin);
  if (buckets->size() < len) buckets->resize(len);
  for (size_t i = 0; i < len; ++i) (*buckets)[i].clear();
  if (len == 0) return Status::OK();

  for (int b = begin / block_minutes_; b <= (end - 1) / block_minutes_; ++b) {
    SPES_RETURN_NOT_OK(EnsureBlockDecoded(b));
    const int block_begin = b * block_minutes_;
    const int lo = std::max(begin, block_begin);
    const int hi = std::min(end, block_begin + block_minutes_);
    for (int t = lo; t < hi; ++t) {
      const std::vector<Invocation>& src =
          block_buckets_[static_cast<size_t>(t - block_begin)];
      std::vector<Invocation>& dst = (*buckets)[static_cast<size_t>(t - begin)];
      dst.insert(dst.end(), src.begin(), src.end());
    }
  }
  return Status::OK();
}

Result<Trace> TraceFileSource::MaterializePrefix(int num_minutes) {
  if (num_minutes < 0 || num_minutes > num_minutes_) {
    return Status::InvalidArgument(
        "MaterializePrefix: prefix of " + std::to_string(num_minutes) +
        " minutes is outside the file horizon of " +
        std::to_string(num_minutes_) + " minutes");
  }
  const size_t n = metas_.size();
  std::vector<FunctionTrace> functions(n);
  for (size_t f = 0; f < n; ++f) {
    functions[f].meta = metas_[f];
    functions[f].counts.assign(static_cast<size_t>(num_minutes), 0);
  }
  for (int b = 0; num_minutes > 0 && b <= (num_minutes - 1) / block_minutes_;
       ++b) {
    SPES_RETURN_NOT_OK(EnsureBlockDecoded(b));
    const int block_begin = b * block_minutes_;
    const int hi = std::min(num_minutes, block_begin + block_minutes_);
    for (int t = block_begin; t < hi; ++t) {
      for (const Invocation& inv :
           block_buckets_[static_cast<size_t>(t - block_begin)]) {
        functions[inv.function].counts[static_cast<size_t>(t)] = inv.count;
      }
    }
  }
  Trace prefix(num_minutes);
  for (size_t f = 0; f < n; ++f) {
    SPES_RETURN_NOT_OK(prefix.Add(std::move(functions[f])));
  }
  return prefix;
}

Result<std::unique_ptr<TraceFileSource>> OpenTraceFile(
    const std::string& path) {
  return TraceFileSource::Open(path);
}

Result<Trace> ReadTraceFile(const std::string& path) {
  SPES_ASSIGN_OR_RETURN(std::unique_ptr<TraceFileSource> source,
                        OpenTraceFile(path));
  return source->MaterializePrefix(source->num_minutes());
}

}  // namespace spes
