// Population summaries of a trace: the statistics behind Figures 3-6 of the
// paper (invocation-count histogram, trigger mix, concept-shift and
// temporal-locality series selection).

#ifndef SPES_TRACE_SUMMARY_H_
#define SPES_TRACE_SUMMARY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace spes {

/// \brief Fig. 3: histogram of per-function invocation totals in decades.
///
/// bucket[k] counts functions whose total invocations fall in
/// [10^k, 10^(k+1)); bucket 0 additionally includes totals of exactly 1.
struct InvocationHistogram {
  std::vector<int64_t> buckets;   // decade buckets
  int64_t zero_functions = 0;     // never invoked
  int64_t total_functions = 0;
  uint64_t total_invocations = 0;
};

/// \brief Builds the Fig. 3 decade histogram over per-function totals.
InvocationHistogram ComputeInvocationHistogram(const Trace& trace);

/// \brief Fig. 5: fraction of functions per trigger type.
std::array<double, kNumTriggerTypes> ComputeTriggerMix(const Trace& trace);

/// \brief Picks up to `k` indices of functions with a visible mid-trace
/// behaviour change, ranked by the relative rate change between halves
/// (Fig. 4 selects three such functions).
std::vector<size_t> FindConceptShiftExamples(const Trace& trace, int k);

/// \brief Picks up to `k` infrequently invoked functions whose invocations
/// concentrate into few short windows (Fig. 6 temporal locality).
///
/// A function qualifies when it has between `min_total` and `max_total`
/// invocations and at least 80% of them land inside active runs spanning
/// under 2% of the horizon.
std::vector<size_t> FindTemporalLocalityExamples(const Trace& trace, int k,
                                                 int min_total,
                                                 int max_total);

/// \brief Downsamples a count series into `num_bins` sums (for plotting
/// rows in bench output).
std::vector<uint64_t> BinSeries(const std::vector<uint32_t>& counts,
                                int num_bins);

}  // namespace spes

#endif  // SPES_TRACE_SUMMARY_H_
