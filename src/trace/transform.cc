#include "trace/transform.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/rng.h"

namespace spes {

namespace {

constexpr uint32_t kMaxCount = std::numeric_limits<uint32_t>::max();

uint32_t SaturatingCount(int64_t value) {
  if (value <= 0) return 0;
  if (value >= static_cast<int64_t>(kMaxCount)) return kMaxCount;
  return static_cast<uint32_t>(value);
}

uint32_t SaturatingAdd(uint32_t a, int64_t b) {
  return SaturatingCount(static_cast<int64_t>(a) + b);
}

// Per-function stream seeds come from MixNameSeed (common/rng.h): keyed
// by *name*, not fleet index, so selection survives reordering/filtering
// upstream.

/// Uniform in [0, 1) derived from (name, seed); a function is "selected"
/// by fraction-style parameters when its point falls below the fraction.
double SelectionPoint(const std::string& name, uint64_t seed) {
  return static_cast<double>(MixNameSeed(name, seed) >> 11) * 0x1.0p-53;
}

/// Binomial(n, p) draw. Exact per-trial Bernoulli for small n; a clamped
/// normal approximation above that (the same large-count strategy as
/// Rng::Poisson), so the cost stays O(minutes) even after upstream
/// load_scale has inflated counts toward the uint32 cap.
uint32_t Binomial(Rng* rng, uint32_t n, double p) {
  if (n <= 32) {
    uint32_t kept = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (rng->Bernoulli(p)) ++kept;
    }
    return kept;
  }
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(static_cast<double>(n) * p * (1.0 - p));
  const int64_t draw = std::llround(rng->Normal(mean, sd));
  return static_cast<uint32_t>(
      std::clamp<int64_t>(draw, 0, static_cast<int64_t>(n)));
}

/// Rebuilds a trace with per-function counts produced by `make_counts`,
/// keeping metadata; `make_counts(i)` must return `new_len` slots.
template <typename MakeCounts>
Result<Trace> RebuildTrace(const Trace& trace, int new_len,
                           MakeCounts make_counts) {
  Trace result(new_len);
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    FunctionTrace function;
    function.meta = trace.function(i).meta;
    function.counts = make_counts(i);
    SPES_RETURN_NOT_OK(result.Add(std::move(function)));
  }
  return result;
}

Status HorizonError(const std::string& transform, const std::string& field,
                    int64_t value, int horizon) {
  return Status::InvalidArgument(
      transform + " parameter '" + field + "' (" + std::to_string(value) +
      ") is outside the trace horizon (" + std::to_string(horizon) +
      " minutes)");
}

// ---------------------------------------------------------------------------
// Built-in transform factories.
// ---------------------------------------------------------------------------

Result<TransformFn> MakeTimeScale(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(
      const double factor,
      DoubleParamInRange(params, "time_scale", "factor", 0.001, 1000.0));
  return TransformFn([factor](const Trace& trace) -> Result<Trace> {
    const int old_len = trace.num_minutes();
    if (old_len == 0) return trace;
    const int new_len = static_cast<int>(std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(old_len) / factor + 0.5)));
    return RebuildTrace(trace, new_len, [&](size_t i) {
      std::vector<uint32_t> counts(new_len, 0);
      const auto& source = trace.function(i).counts;
      for (int t = 0; t < old_len; ++t) {
        if (source[t] == 0) continue;
        // Proportional remap; compression sums neighbours into one slot,
        // stretching spreads source minutes over a longer axis with gaps.
        const int dst = std::min<int64_t>(
            new_len - 1, static_cast<int64_t>(t) * new_len / old_len);
        counts[dst] = SaturatingAdd(counts[dst], source[t]);
      }
      return counts;
    });
  });
}

Result<TransformFn> MakeLoadScale(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(
      const double factor,
      DoubleParamInRange(params, "load_scale", "factor", 0.001, 1000.0));
  return TransformFn([factor](const Trace& trace) -> Result<Trace> {
    return RebuildTrace(trace, trace.num_minutes(), [&](size_t i) {
      std::vector<uint32_t> counts = trace.function(i).counts;
      for (uint32_t& c : counts) {
        // Deterministic half-up rounding; a sub-1 product keeps at least
        // one invocation so scaling down never silently erases a minute.
        if (c == 0) continue;
        const int64_t scaled = static_cast<int64_t>(
            static_cast<double>(c) * factor + 0.5);
        c = std::max<uint32_t>(1, SaturatingCount(scaled));
      }
      return counts;
    });
  });
}

Result<TransformFn> MakeSlice(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(const int64_t start,
                        IntParamInRange(params, "slice", "start_minute", 0));
  SPES_ASSIGN_OR_RETURN(const int64_t end,
                        IntParamInRange(params, "slice", "end_minute", 0));
  return TransformFn([start, end](const Trace& trace) -> Result<Trace> {
    const int horizon = trace.num_minutes();
    const int64_t resolved_end = end == 0 ? horizon : end;
    if (resolved_end > horizon) {
      return HorizonError("slice", "end_minute", resolved_end, horizon);
    }
    if (start >= resolved_end) {
      return Status::InvalidArgument(
          "slice parameter 'start_minute' (" + std::to_string(start) +
          ") must be before end_minute (" + std::to_string(resolved_end) +
          ")");
    }
    const int new_len = static_cast<int>(resolved_end - start);
    return RebuildTrace(trace, new_len, [&](size_t i) {
      const auto& source = trace.function(i).counts;
      return std::vector<uint32_t>(source.begin() + start,
                                   source.begin() + resolved_end);
    });
  });
}

Result<TransformFn> MakeFilterTrigger(const TransformParams& params) {
  const std::string& types = params.GetString("types");
  std::vector<bool> keep(kNumTriggerTypes, false);
  size_t start = 0;
  while (start <= types.size()) {
    size_t plus = types.find('+', start);
    if (plus == std::string::npos) plus = types.size();
    const std::string token = types.substr(start, plus - start);
    const TriggerType trigger = TriggerTypeFromString(token);
    // TriggerTypeFromString maps unknown names to kOthers; reject any
    // token that is not the canonical spelling of what it parsed to.
    if (token != TriggerTypeToString(trigger)) {
      return Status::InvalidArgument(
          "filter_trigger parameter 'types': unknown trigger type '" + token +
          "'; known: http, timer, queue, storage, event, orchestration, "
          "others");
    }
    keep[static_cast<size_t>(trigger)] = true;
    start = plus + 1;
    if (plus == types.size()) break;
  }
  return TransformFn([keep](const Trace& trace) -> Result<Trace> {
    Trace result(trace.num_minutes());
    for (const FunctionTrace& function : trace.functions()) {
      if (keep[static_cast<size_t>(function.meta.trigger)]) {
        SPES_RETURN_NOT_OK(result.Add(function));
      }
    }
    return result;
  });
}

Result<TransformFn> MakeMerge(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(const int64_t copies,
                        IntParamInRange(params, "merge", "copies", 1, 64));
  return TransformFn([copies](const Trace& trace) -> Result<Trace> {
    Trace result(trace.num_minutes());
    for (int64_t k = 0; k < copies; ++k) {
      const std::string suffix = k == 0 ? "" : "#" + std::to_string(k);
      for (const FunctionTrace& function : trace.functions()) {
        FunctionTrace clone = function;
        clone.meta.owner += suffix;
        clone.meta.app += suffix;
        clone.meta.name += suffix;
        SPES_RETURN_NOT_OK(result.Add(std::move(clone)));
      }
    }
    return result;
  });
}

Result<TransformFn> MakeInjectBurst(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(const int64_t at,
                        IntParamInRange(params, "inject_burst", "at", 0));
  SPES_ASSIGN_OR_RETURN(const int64_t width,
                        IntParamInRange(params, "inject_burst", "width", 1));
  SPES_ASSIGN_OR_RETURN(
      const int64_t amplitude,
      IntParamInRange(params, "inject_burst", "amplitude", 1, 1000000));
  SPES_ASSIGN_OR_RETURN(
      const double fraction,
      DoubleParamInRange(params, "inject_burst", "fraction", 0.0, 1.0));
  const uint64_t seed = static_cast<uint64_t>(params.GetInt("seed"));
  return TransformFn([=](const Trace& trace) -> Result<Trace> {
    const int horizon = trace.num_minutes();
    if (at >= horizon) {
      return HorizonError("inject_burst", "at", at, horizon);
    }
    const int64_t end = std::min<int64_t>(horizon, at + width);
    return RebuildTrace(trace, horizon, [&](size_t i) {
      std::vector<uint32_t> counts = trace.function(i).counts;
      if (SelectionPoint(trace.function(i).meta.name, seed) < fraction) {
        for (int64_t t = at; t < end; ++t) {
          counts[t] = SaturatingAdd(counts[t], amplitude);
        }
      }
      return counts;
    });
  });
}

Result<TransformFn> MakeInjectDrift(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(const int64_t at,
                        IntParamInRange(params, "inject_drift", "at", 0));
  SPES_ASSIGN_OR_RETURN(
      const double fraction,
      DoubleParamInRange(params, "inject_drift", "fraction", 0.0, 1.0));
  const uint64_t seed = static_cast<uint64_t>(params.GetInt("seed"));
  return TransformFn([=](const Trace& trace) -> Result<Trace> {
    const int horizon = trace.num_minutes();
    if (at >= horizon) {
      return HorizonError("inject_drift", "at", at, horizon);
    }
    std::vector<size_t> selected;
    for (size_t i = 0; i < trace.num_functions(); ++i) {
      if (SelectionPoint(trace.function(i).meta.name, seed) < fraction) {
        selected.push_back(i);
      }
    }
    // Drift = from minute `at` on, a selected function behaves like a
    // *different* function: consecutive selected pairs swap their count
    // tails (an unpaired leftover reverses its own tail). Fleet-level
    // totals are conserved; per-function distributions shift abruptly.
    std::vector<std::vector<uint32_t>> tails(trace.num_functions());
    for (size_t p = 0; p + 1 < selected.size(); p += 2) {
      const size_t a = selected[p], b = selected[p + 1];
      const auto& ca = trace.function(a).counts;
      const auto& cb = trace.function(b).counts;
      tails[a].assign(cb.begin() + at, cb.end());
      tails[b].assign(ca.begin() + at, ca.end());
    }
    if (selected.size() % 2 == 1) {
      const size_t a = selected.back();
      const auto& ca = trace.function(a).counts;
      tails[a].assign(ca.rbegin(), ca.rend() - at);
    }
    return RebuildTrace(trace, horizon, [&](size_t i) {
      std::vector<uint32_t> counts = trace.function(i).counts;
      if (!tails[i].empty()) {
        std::copy(tails[i].begin(), tails[i].end(), counts.begin() + at);
      }
      return counts;
    });
  });
}

Result<TransformFn> MakeThin(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(
      const double keep_prob,
      DoubleParamInRange(params, "thin", "keep_prob", 0.0, 1.0));
  const uint64_t seed = static_cast<uint64_t>(params.GetInt("seed"));
  return TransformFn([=](const Trace& trace) -> Result<Trace> {
    return RebuildTrace(trace, trace.num_minutes(), [&](size_t i) {
      std::vector<uint32_t> counts = trace.function(i).counts;
      if (keep_prob >= 1.0) return counts;
      // One independent stream per function, seeded by name: thinning is
      // reproducible and independent of fleet order or sibling functions.
      Rng rng(MixNameSeed(trace.function(i).meta.name, seed));
      for (uint32_t& c : counts) {
        if (c > 0) c = Binomial(&rng, c, keep_prob);
      }
      return counts;
    });
  });
}

Result<TransformFn> MakeTopK(const TransformParams& params) {
  SPES_ASSIGN_OR_RETURN(const int64_t k,
                        IntParamInRange(params, "top_k", "k", 1));
  const std::string& by = params.GetString("by");
  if (by != "invocations" && by != "invoked_minutes" && by != "peak") {
    return Status::InvalidArgument(
        "top_k parameter 'by' must be one of invocations, invoked_minutes, "
        "peak; got '" + by + "'");
  }
  return TransformFn([k, by](const Trace& trace) -> Result<Trace> {
    std::vector<std::pair<uint64_t, size_t>> ranked;
    ranked.reserve(trace.num_functions());
    for (size_t i = 0; i < trace.num_functions(); ++i) {
      const FunctionTrace& function = trace.function(i);
      uint64_t metric = 0;
      if (by == "invocations") {
        metric = function.TotalInvocations();
      } else if (by == "invoked_minutes") {
        metric = static_cast<uint64_t>(function.InvokedMinutes());
      } else {
        for (uint32_t c : function.counts) {
          metric = std::max<uint64_t>(metric, c);
        }
      }
      ranked.emplace_back(metric, i);
    }
    // Highest metric first; equal metrics break toward the lower original
    // index, so the cut is fully deterministic.
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    const size_t take = std::min<size_t>(ranked.size(), k);
    std::vector<size_t> kept;
    kept.reserve(take);
    for (size_t r = 0; r < take; ++r) kept.push_back(ranked[r].second);
    std::sort(kept.begin(), kept.end());  // preserve original fleet order

    Trace result(trace.num_minutes());
    for (size_t i : kept) {
      SPES_RETURN_NOT_OK(result.Add(trace.function(i)));
    }
    return result;
  });
}

Status RegisterBuiltins(TransformRegistry& registry) {
  const ParamValue seed_default(0);
  const auto reg = [&registry](TransformRegistry::Entry entry) {
    return registry.Register(std::move(entry));
  };
  SPES_RETURN_NOT_OK(reg(
      {"time_scale",
       "resamples the time axis: factor>1 compresses (neighbouring minutes "
       "merge), factor<1 stretches; total invocations are conserved",
       {{"factor", ParamType::kDouble, ParamValue(1.0),
         "time compression factor (new horizon = old / factor)"}},
       MakeTimeScale}));
  SPES_RETURN_NOT_OK(reg(
      {"load_scale",
       "multiplies every per-minute count by a factor (half-up rounding; "
       "non-zero minutes stay non-zero)",
       {{"factor", ParamType::kDouble, ParamValue(1.0),
         "load multiplier applied to every count"}},
       MakeLoadScale}));
  SPES_RETURN_NOT_OK(reg(
      {"slice",
       "restricts the horizon to [start_minute, end_minute)",
       {{"start_minute", ParamType::kInt, ParamValue(0),
         "first minute kept (inclusive)"},
        {"end_minute", ParamType::kInt, ParamValue(0),
         "one past the last minute kept; 0 means the trace horizon"}},
       MakeSlice}));
  SPES_RETURN_NOT_OK(reg(
      {"filter_trigger",
       "keeps only functions whose trigger type is listed",
       {{"types", ParamType::kString, ParamValue("http"),
         "'+'-separated trigger types to keep, e.g. http+timer"}},
       MakeFilterTrigger}));
  SPES_RETURN_NOT_OK(reg(
      {"merge",
       "self-merges renamed copies of the fleet (k-times-larger workload "
       "with identical structure); use MergeTraces() for distinct fleets",
       {{"copies", ParamType::kInt, ParamValue(2),
         "total copies of the fleet, including the original"}},
       MakeMerge}));
  SPES_RETURN_NOT_OK(reg(
      {"inject_burst",
       "adds a flash crowd: a fraction of functions gain `amplitude` extra "
       "invocations per minute over [at, at+width)",
       {{"at", ParamType::kInt, ParamValue(0), "first minute of the burst"},
        {"width", ParamType::kInt, ParamValue(10),
         "burst duration in minutes"},
        {"amplitude", ParamType::kInt, ParamValue(20),
         "extra invocations per affected minute"},
        {"fraction", ParamType::kDouble, ParamValue(0.1),
         "fraction of functions hit by the burst"},
        {"seed", ParamType::kInt, seed_default,
         "selection seed (functions are picked by name hash)"}},
       MakeInjectBurst}));
  SPES_RETURN_NOT_OK(reg(
      {"inject_drift",
       "concept drift at a point in time: selected function pairs swap "
       "their behaviour from minute `at` on (fleet totals conserved)",
       {{"at", ParamType::kInt, ParamValue(0), "minute the drift occurs"},
        {"fraction", ParamType::kDouble, ParamValue(0.5),
         "fraction of functions that drift"},
        {"seed", ParamType::kInt, seed_default,
         "selection seed (functions are picked by name hash)"}},
       MakeInjectDrift}));
  SPES_RETURN_NOT_OK(reg(
      {"thin",
       "keeps each invocation independently with probability keep_prob "
       "(per-function seeded streams; fully reproducible)",
       {{"keep_prob", ParamType::kDouble, ParamValue(0.5),
         "per-invocation keep probability"},
        {"seed", ParamType::kInt, ParamValue(1), "thinning seed"}},
       MakeThin}));
  SPES_RETURN_NOT_OK(reg(
      {"top_k",
       "keeps the k busiest functions (original fleet order preserved)",
       {{"k", ParamType::kInt, ParamValue(100), "functions to keep"},
        {"by", ParamType::kString, ParamValue("invocations"),
         "ranking metric: invocations, invoked_minutes, or peak"}},
       MakeTopK}));
  return Status::OK();
}

}  // namespace

Result<TransformSpec> ParseTransformSpec(const std::string& text) {
  return ParseNamedSpec(text, "transform");
}

std::string FormatTransformSpec(const TransformSpec& spec) {
  return FormatNamedSpec(spec);
}

Result<std::vector<TransformSpec>> ParseTransformChain(
    const std::string& text) {
  std::vector<TransformSpec> chain;
  // A fully blank string is the empty chain; an empty segment between
  // bars ("a||b", "|a") is a syntax error.
  if (text.find_first_not_of(" \t") == std::string::npos) return chain;
  size_t start = 0;
  while (true) {
    const size_t bar = text.find('|', start);
    const size_t item_end = bar == std::string::npos ? text.size() : bar;
    const std::string item = text.substr(start, item_end - start);
    if (item.find_first_not_of(" \t") == std::string::npos) {
      return Status::InvalidArgument("transform chain '" + text +
                                     "' has an empty step");
    }
    SPES_ASSIGN_OR_RETURN(TransformSpec spec, ParseTransformSpec(item));
    chain.push_back(std::move(spec));
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return chain;
}

std::string FormatTransformChain(const std::vector<TransformSpec>& chain) {
  std::string text;
  for (const TransformSpec& spec : chain) {
    if (!text.empty()) text += " | ";
    text += FormatTransformSpec(spec);
  }
  return text;
}

Status TransformRegistry::Register(Entry entry) {
  if (!IsSpecIdentifier(entry.canonical_name)) {
    return Status::InvalidArgument("transform canonical name '" +
                                   entry.canonical_name +
                                   "' is not an identifier");
  }
  if (!entry.factory) {
    return Status::InvalidArgument("transform '" + entry.canonical_name +
                                   "' registered without a factory");
  }
  SPES_RETURN_NOT_OK(
      ValidateParamSchema("transform", entry.canonical_name, entry.params));
  const std::string name = entry.canonical_name;
  if (!entries_.emplace(name, std::move(entry)).second) {
    return Status::AlreadyExists("transform '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<TransformFn> TransformRegistry::Create(
    const TransformSpec& spec) const {
  if (spec.name.empty()) {
    return Status::InvalidArgument("TransformSpec.name must not be empty");
  }
  const Entry* entry = Find(spec.name);
  if (entry == nullptr) {
    return Status::NotFound("unknown transform '" + spec.name +
                            "'; registered transforms: " +
                            JoinNames(Names()));
  }
  SPES_ASSIGN_OR_RETURN(TransformParams params,
                        MergeSpecParams("transform", spec, entry->params));
  return entry->factory(params);
}

Result<TransformFn> TransformRegistry::CreateFromString(
    const std::string& text) const {
  SPES_ASSIGN_OR_RETURN(const TransformSpec spec, ParseTransformSpec(text));
  return Create(spec);
}

bool TransformRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> TransformRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

const TransformRegistry::Entry* TransformRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

TransformRegistry& TransformRegistry::Global() {
  static TransformRegistry* registry = [] {
    auto* r = new TransformRegistry();
    RegisterBuiltins(*r).CheckOK();
    return r;
  }();
  return *registry;
}

Result<Trace> ApplyTransforms(Trace trace,
                              const std::vector<TransformSpec>& chain) {
  const auto step_error = [](size_t index, const std::string& name,
                             const Status& cause) {
    return Status(cause.code(), "transform chain step " +
                                    std::to_string(index + 1) + " (" + name +
                                    "): " + cause.message());
  };
  for (size_t i = 0; i < chain.size(); ++i) {
    Result<TransformFn> fn = TransformRegistry::Global().Create(chain[i]);
    if (!fn.ok()) return step_error(i, chain[i].name, fn.status());
    Result<Trace> next = fn.ValueOrDie()(trace);
    if (!next.ok()) return step_error(i, chain[i].name, next.status());
    trace = std::move(next).ValueOrDie();
  }
  return trace;
}

Result<Trace> MergeTraces(const std::vector<const Trace*>& traces) {
  if (traces.empty()) {
    return Status::InvalidArgument("MergeTraces requires at least one trace");
  }
  const int horizon = traces[0]->num_minutes();
  for (size_t i = 1; i < traces.size(); ++i) {
    if (traces[i]->num_minutes() != horizon) {
      return Status::InvalidArgument(
          "MergeTraces: trace " + std::to_string(i) + " spans " +
          std::to_string(traces[i]->num_minutes()) + " minutes, expected " +
          std::to_string(horizon));
    }
  }
  Trace result(horizon);
  for (const Trace* trace : traces) {
    for (const FunctionTrace& function : trace->functions()) {
      SPES_RETURN_NOT_OK(result.Add(function));
    }
  }
  return result;
}

}  // namespace spes
