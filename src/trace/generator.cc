#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace spes {

namespace {

/// Diurnal load modulation: a day-periodic sinusoid in [1-amp, 1+amp],
/// emulating the day/night cycle of human-generated (HTTP) traffic.
double Diurnal(int minute, double amplitude) {
  const double phase =
      2.0 * M_PI * static_cast<double>(minute % kMinutesPerDay) /
      static_cast<double>(kMinutesPerDay);
  return 1.0 + amplitude * std::sin(phase);
}

std::string HashName(const char* prefix, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%016llx", prefix,
                static_cast<unsigned long long>(SplitMix64(&value)));
  return buf;
}

}  // namespace

const char* PatternKindToString(PatternKind kind) {
  switch (kind) {
    case PatternKind::kAlwaysWarm:
      return "always-warm";
    case PatternKind::kRegularTimer:
      return "regular-timer";
    case PatternKind::kApproRegular:
      return "appro-regular";
    case PatternKind::kDensePoisson:
      return "dense-poisson";
    case PatternKind::kSuccessiveBurst:
      return "successive-burst";
    case PatternKind::kPulsedBurst:
      return "pulsed-burst";
    case PatternKind::kRarePossible:
      return "rare-possible";
    case PatternKind::kRareRandom:
      return "rare-random";
    case PatternKind::kChainFollower:
      return "chain-follower";
    case PatternKind::kUnseen:
      return "unseen";
  }
  return "?";
}

void SynthAlwaysWarm(Rng* rng, std::vector<uint32_t>* counts, int begin) {
  for (size_t t = static_cast<size_t>(begin); t < counts->size(); ++t) {
    // At least one invocation virtually every slot; the stray zero slot
    // exercises the paper's "sum of inter-invocation time <= horizon/1000"
    // branch of the always-warm definition.
    if (rng->Bernoulli(0.0005)) {
      (*counts)[t] = 0;
    } else {
      (*counts)[t] = 1 + static_cast<uint32_t>(rng->Poisson(3.0));
    }
  }
}

void SynthRegular(Rng* rng, int period, std::vector<uint32_t>* counts,
                  int begin) {
  if (period < 2) period = 2;
  int t = begin + static_cast<int>(rng->UniformInt(0, period - 1));
  const int horizon = static_cast<int>(counts->size());
  while (t < horizon) {
    int fire_at = t;
    // Rare one-slot delivery delay (concurrency limits, network blips).
    if (rng->Bernoulli(0.02)) fire_at += 1;
    // Rare dropped event.
    if (!rng->Bernoulli(0.01) && fire_at < horizon) {
      (*counts)[static_cast<size_t>(fire_at)] +=
          1 + static_cast<uint32_t>(rng->Poisson(0.3));
    }
    t += period;
  }
}

void SynthApproRegular(Rng* rng, int period, std::vector<uint32_t>* counts,
                       int begin) {
  if (period < 3) period = 3;
  const int horizon = static_cast<int>(counts->size());
  int t = begin + static_cast<int>(rng->UniformInt(0, period - 1));
  // Gaps cycle through a small mode set around the nominal period, e.g. an
  // IoT feed nominally every `period` minutes but effectively period +/- 1.
  const std::vector<double> weights = {0.25, 0.5, 0.25};
  while (t < horizon) {
    (*counts)[static_cast<size_t>(t)] += 1;
    const int delta = static_cast<int>(rng->WeightedIndex(weights)) - 1;
    t += period + delta;
  }
}

void SynthDensePoisson(Rng* rng, double rate_per_minute,
                       std::vector<uint32_t>* counts, int begin) {
  if (rate_per_minute <= 0.0) rate_per_minute = 0.5;
  for (size_t t = static_cast<size_t>(begin); t < counts->size(); ++t) {
    const double rate =
        rate_per_minute * Diurnal(static_cast<int>(t), 0.45);
    (*counts)[t] += static_cast<uint32_t>(rng->Poisson(rate));
  }
}

void SynthSuccessiveBurst(Rng* rng, double mean_idle_minutes,
                          int min_active_slots, int min_active_count,
                          std::vector<uint32_t>* counts, int begin) {
  const int horizon = static_cast<int>(counts->size());
  int t = begin + static_cast<int>(rng->Exponential(1.0 / mean_idle_minutes));
  while (t < horizon) {
    // Burst: at least min_active_slots consecutive active slots whose total
    // count comfortably exceeds min_active_count (temporal locality).
    const int slots =
        min_active_slots + static_cast<int>(rng->UniformInt(0, 6));
    uint32_t total = 0;
    for (int s = 0; s < slots && t + s < horizon; ++s) {
      const uint32_t c = 1 + static_cast<uint32_t>(rng->Poisson(2.0));
      (*counts)[static_cast<size_t>(t + s)] += c;
      total += c;
    }
    // Top up the first burst slot if the draw came in under the floor.
    if (total < static_cast<uint32_t>(min_active_count) && t < horizon) {
      (*counts)[static_cast<size_t>(t)] +=
          static_cast<uint32_t>(min_active_count) - total;
    }
    t += slots +
         static_cast<int>(rng->Exponential(1.0 / mean_idle_minutes));
  }
}

void SynthPulsedBurst(Rng* rng, double mean_idle_minutes,
                      std::vector<uint32_t>* counts, int begin) {
  const int horizon = static_cast<int>(counts->size());
  int t = begin + static_cast<int>(rng->Exponential(1.0 / mean_idle_minutes));
  while (t < horizon) {
    // Weak temporal locality: 2-4 active slots, small counts, so the
    // successive-type floor (gamma_1/gamma_2) is NOT met.
    const int slots = 2 + static_cast<int>(rng->UniformInt(0, 2));
    for (int s = 0; s < slots && t + s < horizon; ++s) {
      (*counts)[static_cast<size_t>(t + s)] += 1;
    }
    t += slots +
         static_cast<int>(rng->Exponential(1.0 / mean_idle_minutes));
  }
}

void SynthRarePossible(Rng* rng, int base_gap, std::vector<uint32_t>* counts,
                       int begin) {
  const int horizon = static_cast<int>(counts->size());
  if (base_gap < 30) base_gap = 30;
  // Gaps alternate between two recurring values (e.g. a 6-hour and a
  // 24-hour cadence), so the WT multiset has repeated modes — the defining
  // property of SPES's "possible" type.
  const int gap_a = base_gap;
  const int gap_b = base_gap * 2 + static_cast<int>(rng->UniformInt(0, 3));
  int t = begin + static_cast<int>(rng->UniformInt(0, base_gap));
  bool use_a = true;
  while (t < horizon) {
    (*counts)[static_cast<size_t>(t)] += 1;
    t += use_a ? gap_a : gap_b;
    if (rng->Bernoulli(0.7)) use_a = !use_a;
  }
}

void SynthRareRandom(Rng* rng, int num_events, std::vector<uint32_t>* counts,
                     int begin) {
  const int horizon = static_cast<int>(counts->size());
  if (horizon <= begin) return;
  for (int i = 0; i < num_events; ++i) {
    const int t =
        begin + static_cast<int>(rng->UniformInt(0, horizon - begin - 1));
    (*counts)[static_cast<size_t>(t)] += 1;
  }
}

namespace {

/// Which archetype a fresh function of a given trigger type gets, following
/// the correspondences of §III-B1 (timers are (quasi-)periodic, HTTP is
/// Poisson-with-bursts, queues are dense, storage/event are bursty, ...).
PatternKind SampleKindForTrigger(Rng* rng, TriggerType trigger) {
  switch (trigger) {
    case TriggerType::kTimer: {
      // 68% (quasi-)periodic per the paper's KS-test analysis.
      static const std::vector<double> w = {0.46, 0.26, 0.08, 0.17, 0.03};
      static const PatternKind kinds[] = {
          PatternKind::kRegularTimer, PatternKind::kApproRegular,
          PatternKind::kAlwaysWarm, PatternKind::kRarePossible,
          PatternKind::kRareRandom};
      return kinds[rng->WeightedIndex(w)];
    }
    case TriggerType::kHttp: {
      // ~45% Poisson arrivals; the rest bursty or rare.
      static const std::vector<double> w = {0.45, 0.19, 0.05, 0.06, 0.20,
                                            0.05};
      static const PatternKind kinds[] = {
          PatternKind::kDensePoisson,    PatternKind::kSuccessiveBurst,
          PatternKind::kPulsedBurst,     PatternKind::kAlwaysWarm,
          PatternKind::kRarePossible,    PatternKind::kRareRandom};
      return kinds[rng->WeightedIndex(w)];
    }
    case TriggerType::kQueue: {
      static const std::vector<double> w = {0.55, 0.08, 0.19, 0.13, 0.05};
      static const PatternKind kinds[] = {
          PatternKind::kDensePoisson, PatternKind::kPulsedBurst,
          PatternKind::kSuccessiveBurst, PatternKind::kRarePossible,
          PatternKind::kRareRandom};
      return kinds[rng->WeightedIndex(w)];
    }
    case TriggerType::kStorage: {
      static const std::vector<double> w = {0.53, 0.12, 0.23, 0.12};
      static const PatternKind kinds[] = {
          PatternKind::kSuccessiveBurst, PatternKind::kPulsedBurst,
          PatternKind::kRarePossible, PatternKind::kRareRandom};
      return kinds[rng->WeightedIndex(w)];
    }
    case TriggerType::kEvent: {
      static const std::vector<double> w = {0.20, 0.40, 0.28, 0.12};
      static const PatternKind kinds[] = {
          PatternKind::kPulsedBurst, PatternKind::kDensePoisson,
          PatternKind::kRarePossible, PatternKind::kRareRandom};
      return kinds[rng->WeightedIndex(w)];
    }
    case TriggerType::kOrchestration: {
      // Orchestrated workflows: drivers look dense/regular, the followers
      // are generated separately as chain followers.
      static const std::vector<double> w = {0.40, 0.30, 0.20, 0.10};
      static const PatternKind kinds[] = {
          PatternKind::kDensePoisson, PatternKind::kRegularTimer,
          PatternKind::kSuccessiveBurst, PatternKind::kRareRandom};
      return kinds[rng->WeightedIndex(w)];
    }
    case TriggerType::kOthers:
      break;
  }
  static const std::vector<double> w = {0.2, 0.55, 0.25};
  static const PatternKind kinds[] = {PatternKind::kPulsedBurst,
                                      PatternKind::kRarePossible,
                                      PatternKind::kRareRandom};
  return kinds[rng->WeightedIndex(w)];
}

/// Fig. 5 trigger mix, with the 2.6% "combination" bucket folded into
/// "others" (a combination function still has one dominant timing pattern,
/// per the paper's own argument for ignoring combinations).
TriggerType SampleTrigger(Rng* rng) {
  static const std::vector<double> w = {
      0.4119,  // http
      0.2664,  // timer
      0.1440,  // queue
      0.0219,  // storage
      0.0252,  // event
      0.0776,  // orchestration
      0.0532,  // others (incl. combination)
  };
  static const TriggerType triggers[] = {
      TriggerType::kHttp,  TriggerType::kTimer, TriggerType::kQueue,
      TriggerType::kStorage, TriggerType::kEvent,
      TriggerType::kOrchestration, TriggerType::kOthers};
  return triggers[rng->WeightedIndex(w)];
}

/// Synthesizes one function's counts for `kind` from slot `begin` on.
/// `intensity` in (0,1] scales rates/periods: large => busy function.
void SynthKind(Rng* rng, PatternKind kind, double intensity,
               std::vector<uint32_t>* counts, int begin, GroundTruth* truth) {
  switch (kind) {
    case PatternKind::kAlwaysWarm:
      SynthAlwaysWarm(rng, counts, begin);
      return;
    case PatternKind::kRegularTimer: {
      // Busier functions get shorter periods; cap at 8 hours.
      const int period = std::clamp(
          static_cast<int>(5.0 / std::max(intensity, 1e-3)), 2, 480);
      truth->period = period;
      SynthRegular(rng, period, counts, begin);
      return;
    }
    case PatternKind::kApproRegular: {
      const int period = std::clamp(
          static_cast<int>(8.0 / std::max(intensity, 1e-3)), 3, 480);
      truth->period = period;
      SynthApproRegular(rng, period, counts, begin);
      return;
    }
    case PatternKind::kDensePoisson:
      SynthDensePoisson(rng, 0.8 + 6.0 * intensity, counts, begin);
      return;
    case PatternKind::kSuccessiveBurst:
      SynthSuccessiveBurst(rng, /*mean_idle_minutes=*/
                           200.0 + 1500.0 * (1.0 - intensity),
                           /*min_active_slots=*/4, /*min_active_count=*/8,
                           counts, begin);
      return;
    case PatternKind::kPulsedBurst:
      SynthPulsedBurst(rng, 300.0 + 2500.0 * (1.0 - intensity), counts,
                       begin);
      return;
    case PatternKind::kRarePossible:
      SynthRarePossible(rng,
                        static_cast<int>(240 + 1200 * (1.0 - intensity)),
                        counts, begin);
      return;
    case PatternKind::kRareRandom:
      SynthRareRandom(rng, 1 + static_cast<int>(rng->UniformInt(0, 4)),
                      counts, begin);
      return;
    case PatternKind::kChainFollower:
    case PatternKind::kUnseen:
      // Handled by the caller.
      return;
  }
}

}  // namespace

Status GenerateTraceStreamed(const GeneratorConfig& config,
                             const GeneratedFunctionSink& sink) {
  if (config.num_functions <= 0) {
    return Status::InvalidArgument("num_functions must be positive");
  }
  if (config.days < 2) {
    return Status::InvalidArgument("need at least 2 days of horizon");
  }
  const int horizon = config.days * kMinutesPerDay;
  Rng rng(config.seed);

  /// Functions emitted so far == the index the next function will get.
  int64_t emitted = 0;

  // --- Carve the fleet into owners and applications. -----------------------
  struct AppPlan {
    std::string owner;
    std::string app;
    int size = 1;
    bool is_chain = false;
  };
  std::vector<AppPlan> apps;
  {
    int remaining = config.num_functions;
    uint64_t owner_counter = 0, app_counter = 0;
    while (remaining > 0) {
      const std::string owner = HashName("owner", ++owner_counter);
      // Number of apps this owner has (geometric-ish around the mean).
      int owner_apps = 1;
      while (rng.Bernoulli(1.0 - 1.0 / config.mean_apps_per_owner) &&
             owner_apps < 6) {
        ++owner_apps;
      }
      for (int a = 0; a < owner_apps && remaining > 0; ++a) {
        AppPlan plan;
        plan.owner = owner;
        plan.app = HashName("app", ++app_counter);
        // App sizes mirror the Azure population: about half of all apps
        // hold a single function (Shahrad et al.), with a geometric tail
        // of multi-function apps lifting the mean toward
        // mean_functions_per_app (~3.3 on the real trace).
        if (rng.Bernoulli(0.54)) {
          plan.size = 1;
        } else {
          plan.size = 2;
          while (rng.Bernoulli(0.8) && plan.size < 12) ++plan.size;
        }
        plan.size = std::min(plan.size, remaining);
        plan.is_chain =
            plan.size >= 2 && rng.Bernoulli(config.chain_app_fraction);
        remaining -= plan.size;
        apps.push_back(std::move(plan));
      }
    }
  }

  // --- Generate functions app by app. --------------------------------------
  const int unseen_begin = horizon - config.unseen_days * kMinutesPerDay;
  uint64_t func_counter = 0;

  for (const AppPlan& app : apps) {
    // A per-app trigger: functions within one app overwhelmingly share the
    // trigger type (the paper reports same-trigger candidates having 2x the
    // co-occurrence of different-trigger ones).
    const TriggerType app_trigger = SampleTrigger(&rng);

    // Index of this app's chain driver within the freshly added functions.
    int64_t driver_index = -1;
    std::vector<uint32_t> driver_counts;

    for (int k = 0; k < app.size; ++k) {
      FunctionTrace f;
      f.meta.owner = app.owner;
      f.meta.app = app.app;
      f.meta.name = HashName("func", ++func_counter);
      // ~8% of functions deviate from the app's trigger.
      f.meta.trigger =
          rng.Bernoulli(0.08) ? SampleTrigger(&rng) : app_trigger;
      f.counts.assign(static_cast<size_t>(horizon), 0);

      GroundTruth truth;
      Rng frng = rng.Fork();

      const bool unseen = rng.Bernoulli(config.unseen_fraction);
      const int begin = unseen ? unseen_begin : 0;

      if (app.is_chain && k > 0 && driver_index >= 0 && !unseen) {
        // Chain follower: fires `lag` minutes after each driver event.
        truth.kind = PatternKind::kChainFollower;
        truth.chain_driver = driver_index;
        truth.chain_lag =
            1 + static_cast<int>(frng.UniformInt(0, config.chain_max_lag - 1));
        for (int t = 0; t < horizon; ++t) {
          if (driver_counts[static_cast<size_t>(t)] == 0) continue;
          const int fire_at = t + truth.chain_lag;
          if (fire_at >= horizon) break;
          if (frng.Bernoulli(config.chain_follow_probability)) {
            f.counts[static_cast<size_t>(fire_at)] += 1;
          }
        }
        // Sparse unrelated noise so the correlation is < 1.
        if (frng.Bernoulli(0.3)) {
          SynthRareRandom(&frng, 2, &f.counts, 0);
        }
      } else {
        // Heavy-tailed intensity: rank 1 is the busiest of n levels.
        const int64_t levels = 1000;
        const int64_t rank =
            frng.Zipf(levels, config.intensity_zipf_exponent);
        const double intensity =
            1.0 / static_cast<double>(rank);  // in (1/levels, 1]
        PatternKind kind = SampleKindForTrigger(&frng, f.meta.trigger);
        // Population scale-up knob: at Azure scale most of the fleet sits
        // in the rarely-invoked tail, so optionally force a fraction of
        // functions onto the rare archetypes. Guarded so the default
        // (rare_fraction == 0) consumes no random draws and existing
        // (seed, config) pairs stay bit-identical.
        if (config.rare_fraction > 0.0 &&
            frng.Bernoulli(config.rare_fraction)) {
          kind = frng.Bernoulli(0.5) ? PatternKind::kRarePossible
                                     : PatternKind::kRareRandom;
        }
        truth.kind = unseen ? PatternKind::kUnseen : kind;

        SynthKind(&frng, kind, intensity, &f.counts, begin, &truth);

        // Concept shift: re-synthesize the suffix with fresh parameters
        // (possibly a different archetype), as in Fig. 4.
        if (!unseen && rng.Bernoulli(config.concept_shift_fraction)) {
          const int shift = static_cast<int>(
              frng.UniformInt(horizon / 4, (horizon * 3) / 4));
          truth.shift_minute = shift;
          std::fill(f.counts.begin() + shift, f.counts.end(), 0u);
          PatternKind new_kind = kind;
          if (frng.Bernoulli(0.4)) {
            new_kind = SampleKindForTrigger(&frng, f.meta.trigger);
          }
          const double new_intensity =
              1.0 / static_cast<double>(
                        frng.Zipf(levels, config.intensity_zipf_exponent));
          GroundTruth shifted = truth;
          SynthKind(&frng, new_kind, new_intensity, &f.counts, shift,
                    &shifted);
        }

        if (app.is_chain && k == 0) {
          driver_index = emitted;
          driver_counts = f.counts;
        }
      }

      SPES_RETURN_NOT_OK(sink(std::move(f), truth));
      ++emitted;
    }
  }
  return Status::OK();
}

Result<GeneratedTrace> GenerateTrace(const GeneratorConfig& config) {
  GeneratedTrace out;
  out.trace = Trace(config.days * kMinutesPerDay);
  out.truth.reserve(static_cast<size_t>(
      std::max(config.num_functions, 0)));
  SPES_RETURN_NOT_OK(GenerateTraceStreamed(
      config, [&out](FunctionTrace&& f, const GroundTruth& truth) -> Status {
        SPES_RETURN_NOT_OK(out.trace.Add(std::move(f)));
        out.truth.push_back(truth);
        return Status::OK();
      }));
  return out;
}

}  // namespace spes
