// Synthetic serverless workload generator calibrated to the population
// statistics the paper reports for the Azure Functions 2019 trace.
//
// The real dataset is proprietary-hosted (a multi-GB download) and is not
// available offline, so this module synthesizes a fleet with the same
// observable structure:
//
//   * trigger-type mix of Fig. 5 (http 41.2%, timer 26.6%, queue 14.4%, ...);
//   * heavy-tailed per-function invocation totals (Fig. 3) via a Zipf rate
//     scale spanning singleton invocations to always-on functions;
//   * the invocation-pattern archetypes SPES's taxonomy targets: always-warm,
//     (quasi-)periodic timers, dense Poisson arrivals with diurnal
//     modulation, bursty temporal locality (Fig. 6), rare-but-repetitive
//     gaps, and uniformly random rare functions;
//   * intra-application workflow chains whose followers fire a fixed lag
//     after their driver (the co-occurrence structure of §III-B2);
//   * concept shifts in a configurable fraction of functions (Fig. 4);
//   * functions that only appear in the last days ("unseen" during training).
//
// Each generated function also records its ground-truth archetype so tests
// can verify that SPES's categorizer recovers the intended pattern.

#ifndef SPES_TRACE_GENERATOR_H_
#define SPES_TRACE_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "trace/trace.h"

namespace spes {

/// \brief Ground-truth pattern archetype of a generated function.
enum class PatternKind : uint8_t {
  kAlwaysWarm = 0,
  kRegularTimer,
  kApproRegular,
  kDensePoisson,
  kSuccessiveBurst,
  kPulsedBurst,
  kRarePossible,
  kRareRandom,
  kChainFollower,
  kUnseen,
};

inline constexpr int kNumPatternKinds = 10;

/// \brief Stable lowercase name of a PatternKind ("always-warm", ...).
const char* PatternKindToString(PatternKind kind);

/// \brief Knobs for the synthetic fleet. Defaults reproduce the paper's
/// population statistics at a laptop-friendly scale.
struct GeneratorConfig {
  /// Total number of functions in the fleet.
  int num_functions = 4000;
  /// Horizon in days (paper: 14 = 12 train + 2 simulate).
  int days = 14;
  /// Master seed; (seed, config) fully determines the trace.
  uint64_t seed = 20240317;

  /// Mean functions per application (real trace: 83,137 / 24,964 = 3.33).
  double mean_functions_per_app = 3.3;
  /// Mean applications per owner (real trace: 24,964 / 15,097 = 1.65).
  double mean_apps_per_owner = 1.65;

  /// Fraction of functions whose behaviour shifts mid-trace (Fig. 4).
  double concept_shift_fraction = 0.12;
  /// Fraction of functions invoked only in the final `unseen_days` days
  /// (the paper's 743 never-seen-in-training functions).
  double unseen_fraction = 0.019;
  /// Days at the end of the horizon where unseen functions activate.
  int unseen_days = 2;

  /// Probability that a multi-function app is a workflow chain whose
  /// non-driver functions follow the driver at a fixed lag. Calibrated so
  /// that the same-app co-occurrence rate lands near the paper's measured
  /// 0.23 average (vs 0.05 for unrelated functions).
  double chain_app_fraction = 0.15;
  /// Per-event probability that a chain follower actually fires.
  double chain_follow_probability = 0.75;
  /// Maximum driver->follower lag in minutes (paper uses T <= 10).
  int chain_max_lag = 5;

  /// Zipf exponent for the per-function intensity scale (heavier tail
  /// as the exponent grows). Calibrated to reproduce Fig. 3's spread.
  double intensity_zipf_exponent = 1.6;

  /// Fraction of (non-unseen) functions forced onto the rare archetypes
  /// (kRarePossible / kRareRandom, 50/50). The default archetype mix is
  /// calibrated at laptop scale, where a third of the fleet fires every
  /// minute; extrapolated to an Azure-scale million-function population
  /// that density is unrealistic — the real trace's tail is dominated by
  /// rarely-invoked functions. 0 (the default) changes nothing: existing
  /// (seed, config) pairs stay bit-identical.
  double rare_fraction = 0.0;
};

/// \brief Ground truth for one generated function (testing/analysis only;
/// no policy sees this).
struct GroundTruth {
  PatternKind kind = PatternKind::kRareRandom;
  /// Period for (appro-)regular archetypes, 0 otherwise.
  int period = 0;
  /// Shift point in minutes, -1 when the function does not shift.
  int shift_minute = -1;
  /// Driver function index for chain followers, -1 otherwise.
  int64_t chain_driver = -1;
  /// Driver->follower lag for chain followers.
  int chain_lag = 0;
};

/// \brief A generated trace plus per-function ground truth.
struct GeneratedTrace {
  Trace trace;
  std::vector<GroundTruth> truth;  // parallel to trace.functions()
};

/// \brief Synthesizes a fleet according to `config`.
///
/// Deterministic: equal configs yield bit-identical traces.
Result<GeneratedTrace> GenerateTrace(const GeneratorConfig& config);

/// \brief Receives one synthesized function (its counts span the full
/// horizon) plus its ground truth. Returning an error aborts generation.
using GeneratedFunctionSink =
    std::function<Status(FunctionTrace&&, const GroundTruth&)>;

/// \brief Sink-based generator: each function is handed to `sink` in
/// fleet order and then dropped, so an Azure-scale fleet can be packed
/// straight to disk (trace/trace_file.h) without the full trace ever
/// existing in memory. The RNG schedule is shared with GenerateTrace —
/// that function is literally this one with an accumulate-into-Trace
/// sink — so equal configs yield bit-identical functions through either
/// entry point.
Status GenerateTraceStreamed(const GeneratorConfig& config,
                             const GeneratedFunctionSink& sink);

/// \name Archetype synthesizers (exposed for unit tests).
/// Each fills `counts` (pre-sized to the horizon) from slot `begin` on.
/// @{
void SynthAlwaysWarm(Rng* rng, std::vector<uint32_t>* counts, int begin);
void SynthRegular(Rng* rng, int period, std::vector<uint32_t>* counts,
                  int begin);
void SynthApproRegular(Rng* rng, int period, std::vector<uint32_t>* counts,
                       int begin);
void SynthDensePoisson(Rng* rng, double rate_per_minute,
                       std::vector<uint32_t>* counts, int begin);
void SynthSuccessiveBurst(Rng* rng, double mean_idle_minutes,
                          int min_active_slots, int min_active_count,
                          std::vector<uint32_t>* counts, int begin);
void SynthPulsedBurst(Rng* rng, double mean_idle_minutes,
                      std::vector<uint32_t>* counts, int begin);
void SynthRarePossible(Rng* rng, int base_gap, std::vector<uint32_t>* counts,
                       int begin);
void SynthRareRandom(Rng* rng, int num_events, std::vector<uint32_t>* counts,
                     int begin);
/// @}

}  // namespace spes

#endif  // SPES_TRACE_GENERATOR_H_
