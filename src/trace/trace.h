// Core trace model: per-minute invocation counts for a fleet of serverless
// functions, in the shape of the Microsoft Azure Functions 2019 dataset the
// paper evaluates on (14 days of per-minute counts; each function carries
// hashed owner/app identifiers and a trigger type).

#ifndef SPES_TRACE_TRACE_H_
#define SPES_TRACE_TRACE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace spes {

/// Number of sampling slots (minutes) per trace day.
inline constexpr int kMinutesPerDay = 1440;

/// \brief Trigger type bound to a function (Fig. 5 taxonomy).
enum class TriggerType : uint8_t {
  kHttp = 0,
  kTimer,
  kQueue,
  kStorage,
  kEvent,
  kOrchestration,
  kOthers,
};

inline constexpr int kNumTriggerTypes = 7;

/// \brief Stable lowercase name, matching the Azure dataset's vocabulary.
const char* TriggerTypeToString(TriggerType trigger);

/// \brief Parses a trigger name; unknown names map to kOthers.
TriggerType TriggerTypeFromString(const std::string& name);

/// \brief Identity and static metadata of one function.
struct FunctionMeta {
  /// Hashed owner (user/subscription) id.
  std::string owner;
  /// Hashed application id; functions of one app form a logical workflow.
  std::string app;
  /// Hashed function id, unique within the trace.
  std::string name;
  TriggerType trigger = TriggerType::kOthers;
};

/// \brief One function's metadata plus its per-minute invocation counts.
struct FunctionTrace {
  FunctionMeta meta;
  /// counts[t] = number of invocations in minute t; same length fleet-wide.
  std::vector<uint32_t> counts;

  /// \brief Total invocations over the whole horizon.
  [[nodiscard]] uint64_t TotalInvocations() const;
  /// \brief Number of minutes with at least one invocation.
  [[nodiscard]] int64_t InvokedMinutes() const;
};

/// \brief A fleet of function traces over a common time horizon.
class Trace {
 public:
  Trace() = default;
  explicit Trace(int num_minutes) : num_minutes_(num_minutes) {}

  /// \brief Appends a function; its counts must span num_minutes().
  Status Add(FunctionTrace function);

  /// \brief Common horizon of every function, in minutes.
  [[nodiscard]] int num_minutes() const { return num_minutes_; }
  /// \brief Number of functions in the fleet.
  [[nodiscard]] size_t num_functions() const { return functions_.size(); }
  /// \brief All function traces, in insertion order.
  [[nodiscard]] const std::vector<FunctionTrace>& functions() const { return functions_; }
  /// \brief The i-th function trace (unchecked index).
  [[nodiscard]] const FunctionTrace& function(size_t i) const { return functions_[i]; }

  /// \brief Index of the function with the given hashed name, or -1.
  [[nodiscard]] int64_t FindByName(const std::string& name) const;

  /// \brief Function indices grouped by application id.
  [[nodiscard]] std::unordered_map<std::string, std::vector<size_t>> GroupByApp() const;

  /// \brief Function indices grouped by owner id.
  [[nodiscard]] std::unordered_map<std::string, std::vector<size_t>> GroupByOwner() const;

  /// \brief Counts of `function_index` restricted to [begin, end).
  std::span<const uint32_t> Slice(size_t function_index, int begin,
                                  int end) const;

  /// \brief Number of distinct owners in the fleet.
  [[nodiscard]] size_t CountOwners() const;
  /// \brief Number of distinct applications in the fleet.
  [[nodiscard]] size_t CountApps() const;

 private:
  int num_minutes_ = 0;
  std::vector<FunctionTrace> functions_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace spes

#endif  // SPES_TRACE_TRACE_H_
