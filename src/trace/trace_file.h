// Compact on-disk trace format with streamed realization.
//
// A packed trace file holds a fleet's per-minute invocation counts as
// delta-encoded varint event lists, grouped into 256-minute blocks that
// align with ArrivalDecoder's transpose granularity, each optionally
// LZ-compressed. The layout (docs/trace_format.md has the full diagram):
//
//   [ header        ]  72 bytes, fixed-width little-endian
//   [ function table]  per function: owner/app/name (varint-length-
//                      prefixed), trigger byte, varint total invocations
//   [ block index   ]  per block: u64 offset, u32 stored, u32 raw, u8 codec
//   [ blocks        ]  per block: concatenated per-function event chunks
//
// Every field a reader consumes is bounds-checked through BinaryReader
// (common/binary_io.h) — the parser treats the file as hostile input and
// turns any malformation into InvalidArgument, never a crash or OOB read
// (fuzz/fuzz_trace_file.cc hammers this). Decoding a block yields exactly
// the arrival stream the in-memory path produces, so simulations served
// from disk are bitwise-identical to in-memory runs (tests/trace_file_test
// pins this against the seed-99 goldens).

#ifndef SPES_TRACE_TRACE_FILE_H_
#define SPES_TRACE_TRACE_FILE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace spes {

/// \brief Writer knobs for packing a trace.
struct TraceFileOptions {
  /// Try the per-block LZ codec and keep it wherever it shrinks the block
  /// (blocks that don't compress are stored raw; the codec byte per index
  /// entry records the choice).
  bool compress = true;
  /// Minutes per block. The default matches ArrivalDecoder's transpose
  /// granularity so one decoded file block serves exactly one decoder
  /// block. Must be in [1, 65535].
  int block_minutes = 256;
};

/// \brief Size/ratio accounting of one packed file.
struct TraceFileStats {
  uint64_t num_functions = 0;
  uint32_t num_minutes = 0;
  uint64_t total_invocations = 0;
  /// Total bytes of the packed file.
  uint64_t file_bytes = 0;
  /// Header + function table + block index bytes.
  uint64_t metadata_bytes = 0;
  /// Event-chunk payload before block compression.
  uint64_t payload_raw_bytes = 0;
  /// Event-chunk payload as stored (after per-block codec choice).
  uint64_t payload_stored_bytes = 0;

  /// \brief Bytes of the equivalent dense in-memory count matrix
  /// (4 * num_functions * num_minutes) — what a realized Trace's count
  /// vectors alone would occupy.
  [[nodiscard]] uint64_t DenseBytes() const {
    return 4ull * num_functions * num_minutes;
  }
  /// \brief Dense in-memory bytes per packed file byte (higher is better).
  [[nodiscard]] double CompressionRatio() const {
    return file_bytes == 0
               ? 0.0
               : static_cast<double>(DenseBytes()) /
                     static_cast<double>(file_bytes);
  }
};

/// \brief Incremental packer: functions are added one at a time (metadata +
/// full-horizon counts) and encoded straight into per-block buffers, so an
/// arbitrarily large fleet packs in O(num_minutes + encoded bytes) memory —
/// nothing requires the realized Trace to exist. Move-only.
class TraceFileWriter {
 public:
  /// \brief A writer for a fleet over `num_minutes` minutes.
  static Result<TraceFileWriter> Create(int num_minutes,
                                        TraceFileOptions options = {});

  /// \brief Appends one function; `counts` must span num_minutes.
  Status Add(const FunctionMeta& meta, std::span<const uint32_t> counts);

  /// \brief Assembles the file and writes it to `path` (atomically sized:
  /// the stream is fully buffered before the first byte lands). The writer
  /// is spent afterwards.
  Result<TraceFileStats> WriteTo(const std::string& path);

  /// \brief Assembles the file in memory (tests, fuzz corpus seeds). The
  /// writer is spent afterwards. When `stats` is non-null it receives the
  /// same accounting WriteTo() returns.
  Result<std::string> ToBytes(TraceFileStats* stats = nullptr);

 private:
  TraceFileWriter(int num_minutes, const TraceFileOptions& options);

  TraceFileOptions options_;
  int num_minutes_;
  int num_blocks_;
  uint64_t num_functions_ = 0;
  uint64_t total_invocations_ = 0;
  BinaryWriter table_;
  std::vector<BinaryWriter> block_payloads_;
};

/// \brief Packs a realized trace to `path`. Convenience over
/// TraceFileWriter for in-memory fleets.
Result<TraceFileStats> WriteTraceFile(const Trace& trace,
                                      const std::string& path,
                                      const TraceFileOptions& options = {});

/// \brief A packed trace file opened for streaming: metadata, function
/// table and block index live in memory; event blocks are read and decoded
/// on demand, one block cached at a time, so peak memory is O(fleet
/// metadata + one block) regardless of horizon. Implements TraceSource, so
/// SimStream/ClusterSession/ArrivalDecoder run straight off the file.
class TraceFileSource final : public TraceSource {
 public:
  /// \brief Opens and fully validates `path`'s header/table/index.
  static Result<std::unique_ptr<TraceFileSource>> Open(
      const std::string& path);

  /// \brief Same, over an in-memory byte image (tests and the fuzzer
  /// exercise the identical parse path files go through).
  static Result<std::unique_ptr<TraceFileSource>> FromBytes(
      std::string bytes);

  [[nodiscard]] int num_minutes() const override { return num_minutes_; }
  [[nodiscard]] size_t num_functions() const override { return metas_.size(); }
  [[nodiscard]] const FunctionMeta& function_meta(size_t f) const override {
    return metas_[f];
  }

  Status FillArrivals(int begin, int end,
                      std::vector<std::vector<Invocation>>* buckets) override;

  Result<Trace> MaterializePrefix(int num_minutes) override;

  /// \brief Size/ratio accounting recomputed from the opened file.
  [[nodiscard]] const TraceFileStats& stats() const { return stats_; }
  /// \brief Minutes per block as recorded in the header.
  [[nodiscard]] int block_minutes() const { return block_minutes_; }
  /// \brief Whole-horizon invocation total of function `f` from the table.
  [[nodiscard]] uint64_t function_total(size_t f) const { return totals_[f]; }

 private:
  struct BlockEntry {
    uint64_t offset = 0;  ///< absolute file offset of the stored bytes
    uint32_t stored_bytes = 0;
    uint32_t raw_bytes = 0;
    uint8_t codec = 0;  ///< 0 = raw, 1 = LZ
  };

  TraceFileSource() = default;

  /// \brief Reads `size` bytes at absolute offset `offset` into `out`.
  Status ReadAt(uint64_t offset, size_t size, std::string* out);
  /// \brief Parses everything up to (not including) the block payloads.
  Status ParseMetadata(uint64_t file_size);
  /// \brief Decodes block `b` into block_buckets_ (cached; no-op if hot).
  Status EnsureBlockDecoded(int b);

  // Exactly one of the two backings is active: a seekable stream for
  // Open(path), an owned byte image for FromBytes().
  std::ifstream file_;
  std::string bytes_;
  bool from_bytes_ = false;
  std::string path_;  ///< for error messages; empty for byte images

  int num_minutes_ = 0;
  int block_minutes_ = 0;
  std::vector<FunctionMeta> metas_;
  std::vector<uint64_t> totals_;
  std::vector<BlockEntry> index_;
  TraceFileStats stats_;

  int cached_block_ = -1;
  std::vector<std::vector<Invocation>> block_buckets_;
  std::string stored_scratch_;
  std::string raw_scratch_;
};

/// \brief Opens `path` for streaming (alias of TraceFileSource::Open — the
/// name the rest of the codebase uses).
Result<std::unique_ptr<TraceFileSource>> OpenTraceFile(
    const std::string& path);

/// \brief Fully realizes `path` as an in-memory Trace (open + materialize
/// the whole horizon). The streamed path's inverse of WriteTraceFile.
Result<Trace> ReadTraceFile(const std::string& path);

}  // namespace spes

#endif  // SPES_TRACE_TRACE_FILE_H_
