// Reader/writer for the Azure Functions 2019 invocation-trace CSV schema.
//
// The public dataset ships one file per day named
//   invocations_per_function_md.anon.d{NN}.csv
// with the header
//   HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
// and one row per (function, day) giving per-minute invocation counts.
//
// ReadAzureTraceDir() stitches the daily files into a single Trace with a
// common horizon; functions missing on a day contribute zeros for that day,
// matching how the paper's simulation treats the dataset. WriteAzureTraceDir()
// emits the same schema so synthetic traces round-trip and real trace files
// can be dropped in unchanged.

#ifndef SPES_TRACE_AZURE_CSV_H_
#define SPES_TRACE_AZURE_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace spes {

/// \brief Writes `trace` as one Azure-schema CSV per day under `dir`.
///
/// The trace horizon must be a whole number of days. Creates `dir` if
/// missing. Rows whose day slice is all zero are skipped for that day,
/// mirroring the real dataset (a function only has a row on days it ran,
/// except functions never invoked at all, which appear on day 1 so their
/// metadata is preserved).
Status WriteAzureTraceDir(const Trace& trace, const std::string& dir);

/// \brief Reads every `invocations_per_function_md.anon.d*.csv` in `dir`.
Result<Trace> ReadAzureTraceDir(const std::string& dir);

/// \brief Parses one CSV line of the Azure schema into (meta, counts).
///
/// Exposed for testing; `expected_slots` is normally kMinutesPerDay.
Result<FunctionTrace> ParseAzureCsvLine(const std::string& line,
                                        int expected_slots);

/// \brief Serializes one function-day row in the Azure schema.
std::string FormatAzureCsvLine(const FunctionMeta& meta,
                               const uint32_t* counts, int num_slots);

}  // namespace spes

#endif  // SPES_TRACE_AZURE_CSV_H_
