#include "obs/clock.h"

#include <chrono>

namespace spes {

double MonotonicSeconds() {
  // The only steady_clock read in the library (lint_invariants.py R1
  // allowlists exactly this file pair).
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace spes
