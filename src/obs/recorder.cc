#include "obs/recorder.h"

#include <cmath>
#include <cstdio>

#include "common/table.h"
#include "obs/clock.h"

namespace spes {
namespace {

std::string FormatSeconds(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0) seconds = 0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

RunRecorder::RunRecorder(LogSink* sink, Options options, ClockFn clock)
    : sink_(sink),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : &MonotonicSeconds) {
  if (options_.heartbeat_minute_stride < 1) {
    options_.heartbeat_minute_stride = 1;
  }
  t0_ = clock_();
  std::string line = "{\"ev\":\"run_start\",\"schema\":" +
                     std::to_string(kRunLogSchemaVersion) +
                     ",\"t\":0.000000";
  if (!options_.label.empty()) {
    line += ",\"label\":" + JsonEscape(options_.label);
  }
  line += "}";
  std::lock_guard<std::mutex> lock(mu_);
  WriteLineLocked(line);
}

RunRecorder::~RunRecorder() { Finish(); }

uint64_t RunRecorder::BeginSpan(const std::string& name, int slot, int lane,
                                const std::string& detail) {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return 0;
  OpenSpan open;
  open.token = next_token_++;
  open.record.name = name;
  open.record.detail = detail;
  open.record.slot = slot;
  open.record.lane = lane;
  open.record.t = now;
  open_spans_.push_back(std::move(open));
  return open_spans_.back().token;
}

void RunRecorder::EndSpan(uint64_t token) {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_ || token == 0) return;
  for (size_t i = 0; i < open_spans_.size(); ++i) {
    if (open_spans_[i].token != token) continue;
    SpanRecord record = std::move(open_spans_[i].record);
    open_spans_.erase(open_spans_.begin() +
                      static_cast<std::ptrdiff_t>(i));
    record.dur = now > record.t ? now - record.t : 0.0;
    std::string line = "{\"ev\":\"span\",\"t\":" + FormatSeconds(record.t) +
                       ",\"dur\":" + FormatSeconds(record.dur) +
                       ",\"name\":" + JsonEscape(record.name) +
                       ",\"slot\":" + std::to_string(record.slot) +
                       ",\"lane\":" + std::to_string(record.lane);
    if (!record.detail.empty()) {
      line += ",\"detail\":" + JsonEscape(record.detail);
    }
    line += "}";
    WriteLineLocked(line);
    closed_spans_.push_back(std::move(record));
    return;
  }
}

void RunRecorder::Config(const std::string& key, const std::string& value) {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  WriteLineLocked("{\"ev\":\"config\",\"t\":" + FormatSeconds(now) +
                  ",\"key\":" + JsonEscape(key) +
                  ",\"value\":" + JsonEscape(value) + "}");
}

void RunRecorder::EmitHeartbeat(const Heartbeat& heartbeat) {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  WriteLineLocked(
      "{\"ev\":\"heartbeat\",\"t\":" + FormatSeconds(now) +
      ",\"slot\":" + std::to_string(heartbeat.slot) +
      ",\"lane\":" + std::to_string(heartbeat.lane) +
      ",\"minute\":" + std::to_string(heartbeat.minute) +
      ",\"invocations\":" + std::to_string(heartbeat.invocations) +
      ",\"cold_starts\":" + std::to_string(heartbeat.cold_starts) +
      ",\"loaded_instance_minutes\":" +
      std::to_string(heartbeat.loaded_instance_minutes) +
      ",\"wasted_memory_minutes\":" +
      std::to_string(heartbeat.wasted_memory_minutes) +
      ",\"loaded\":" + std::to_string(heartbeat.loaded_instances) +
      ",\"queue_depth\":" + std::to_string(heartbeat.queue_depth) + "}");
}

void RunRecorder::CacheEvent(const std::string& op, const std::string& key) {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  WriteLineLocked("{\"ev\":\"cache\",\"t\":" + FormatSeconds(now) +
                  ",\"op\":" + JsonEscape(op) +
                  ",\"key\":" + JsonEscape(key) + "}");
}

void RunRecorder::DecoderEvent(int slot, uint64_t blocks,
                               uint64_t invocations) {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  WriteLineLocked("{\"ev\":\"decoder\",\"t\":" + FormatSeconds(now) +
                  ",\"slot\":" + std::to_string(slot) +
                  ",\"blocks\":" + std::to_string(blocks) +
                  ",\"invocations\":" + std::to_string(invocations) + "}");
}

void RunRecorder::CheckpointEvent(const std::string& op, int slot,
                                  uint64_t cursor) {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  WriteLineLocked("{\"ev\":\"checkpoint\",\"t\":" + FormatSeconds(now) +
                  ",\"op\":" + JsonEscape(op) +
                  ",\"slot\":" + std::to_string(slot) +
                  ",\"cursor\":" + std::to_string(cursor) + "}");
}

void RunRecorder::Finish() {
  const double now = Elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  WriteLineLocked(
      "{\"ev\":\"run_end\",\"t\":" + FormatSeconds(now) +
      ",\"spans\":" + std::to_string(closed_spans_.size()) +
      ",\"events\":" + std::to_string(num_events_) +
      ",\"duration_seconds\":" + FormatSeconds(now) + "}");
  sink_->Flush();
  finished_ = true;
}

std::vector<SpanRecord> RunRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_spans_;
}

Status RunRecorder::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson(spans());
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open trace output '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool write_error = written != json.size();
  if (std::fclose(file) != 0 || write_error) {
    return Status::IOError("error writing trace output '" + path + "'");
  }
  return Status::OK();
}

void RunRecorder::WriteLineLocked(const std::string& line) {
  sink_->WriteLine(line);
  ++num_events_;
}

}  // namespace spes
