// The one sanctioned monotonic wall-clock in the library.
//
// Every wall-clock read in src/ flows through MonotonicSeconds() so the
// invariant linter (tools/lint_invariants.py R1) can confine
// std::chrono::steady_clock to this translation unit. Wall-clock values
// are *observability only*: they feed overhead metrics, span traces and
// progress heartbeats, and must never influence simulation state — the
// seed-99 goldens pin that contract bitwise.

#ifndef SPES_OBS_CLOCK_H_
#define SPES_OBS_CLOCK_H_

namespace spes {

/// \brief Seconds on a process-local monotonic clock.
///
/// The epoch is unspecified (steady_clock's); only differences are
/// meaningful. Thread-safe, lock-free, never decreases.
double MonotonicSeconds();

}  // namespace spes

#endif  // SPES_OBS_CLOCK_H_
