#include "obs/run_log.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/table.h"

namespace spes {
namespace {

/// Nesting bound for the JSON parser: run-log lines are depth ~2, so a
/// deeply nested document is hostile input, not a real log.
constexpr int kMaxJsonDepth = 64;

/// Formats a double for JSON output without locale dependence.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

/// Recursive-descent JSON parser over raw bytes. Total: any input
/// yields a value or a Status with the failing byte offset.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    // SPES_RETURN_NOT_OK works here: Result<JsonValue> converts
    // implicitly from a non-OK Status.
    SPES_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument(what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Fail(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return Fail("JSON nested too deeply");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = true;
        });
      case 'f':
        return ParseLiteral("false", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = false;
        });
      case 'n':
        return ParseLiteral("null",
                            [out] { out->kind = JsonValue::Kind::kNull; });
      default:
        return ParseNumber(out);
    }
  }

  template <typename Commit>
  Status ParseLiteral(const char* word, Commit commit) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Fail("invalid literal");
    }
    pos_ += len;
    commit();
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(value)) {
      pos_ = start;
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    SPES_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const unsigned char c =
          static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return Status::OK();
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          SPES_RETURN_NOT_OK(ParseHex4(&code));
          // Combine a surrogate pair when the low half follows; a lone
          // surrogate is encoded as-is (never crashes on hostile input).
          if (code >= 0xD800 && code <= 0xDBFF &&
              pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
              text_[pos_ + 1] == 'u') {
            const size_t mark = pos_;
            pos_ += 2;
            unsigned low = 0;
            SPES_RETURN_NOT_OK(ParseHex4(&low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = mark;  // not a pair; leave the next escape alone
            }
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    SPES_RETURN_NOT_OK(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SPES_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      SPES_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      SPES_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object_items.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      SPES_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    SPES_RETURN_NOT_OK(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      SPES_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->array_items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      SPES_RETURN_NOT_OK(Expect(','));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Typed field access over a parsed event line ---------------------------

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("run log line " + std::to_string(line_no) +
                                 ": " + what);
}

Result<std::string> GetString(const JsonValue& obj, const char* key,
                              size_t line_no) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return LineError(line_no,
                     std::string("missing string field '") + key + "'");
  }
  return v->string_value;
}

Result<double> GetNumber(const JsonValue& obj, const char* key,
                         size_t line_no) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return LineError(line_no,
                     std::string("missing numeric field '") + key + "'");
  }
  return v->number_value;
}

Result<int> GetInt(const JsonValue& obj, const char* key, size_t line_no) {
  SPES_ASSIGN_OR_RETURN(const double value, GetNumber(obj, key, line_no));
  if (value < -2147483648.0 || value > 2147483647.0 ||
      value != std::floor(value)) {
    return LineError(line_no,
                     std::string("field '") + key + "' is not an int");
  }
  return static_cast<int>(value);
}

Result<uint64_t> GetUint64(const JsonValue& obj, const char* key,
                           size_t line_no) {
  SPES_ASSIGN_OR_RETURN(const double value, GetNumber(obj, key, line_no));
  if (value < 0 || value != std::floor(value)) {
    return LineError(line_no, std::string("field '") + key +
                                  "' is not a non-negative integer");
  }
  return static_cast<uint64_t>(value);
}

// Optional variants: absent ⇒ fallback, present-but-wrong-type ⇒ error.
Result<int> GetIntOr(const JsonValue& obj, const char* key, int fallback,
                     size_t line_no) {
  if (obj.Find(key) == nullptr) return fallback;
  return GetInt(obj, key, line_no);
}

Result<std::string> GetStringOr(const JsonValue& obj, const char* key,
                                const std::string& fallback,
                                size_t line_no) {
  if (obj.Find(key) == nullptr) return fallback;
  return GetString(obj, key, line_no);
}

Result<uint64_t> GetUint64Or(const JsonValue& obj, const char* key,
                             uint64_t fallback, size_t line_no) {
  if (obj.Find(key) == nullptr) return fallback;
  return GetUint64(obj, key, line_no);
}

Status ApplyEvent(const JsonValue& obj, const std::string& kind,
                  size_t line_no, ParsedRunLog* out) {
  if (kind == "span") {
    SpanRecord span;
    SPES_ASSIGN_OR_RETURN(span.name, GetString(obj, "name", line_no));
    SPES_ASSIGN_OR_RETURN(span.detail,
                          GetStringOr(obj, "detail", "", line_no));
    SPES_ASSIGN_OR_RETURN(span.slot, GetIntOr(obj, "slot", 0, line_no));
    SPES_ASSIGN_OR_RETURN(span.lane, GetIntOr(obj, "lane", 0, line_no));
    SPES_ASSIGN_OR_RETURN(span.t, GetNumber(obj, "t", line_no));
    SPES_ASSIGN_OR_RETURN(span.dur, GetNumber(obj, "dur", line_no));
    out->spans.push_back(std::move(span));
  } else if (kind == "heartbeat") {
    HeartbeatRecord hb;
    SPES_ASSIGN_OR_RETURN(hb.slot, GetIntOr(obj, "slot", 0, line_no));
    SPES_ASSIGN_OR_RETURN(hb.lane, GetIntOr(obj, "lane", 0, line_no));
    SPES_ASSIGN_OR_RETURN(hb.minute, GetInt(obj, "minute", line_no));
    SPES_ASSIGN_OR_RETURN(hb.invocations,
                          GetUint64(obj, "invocations", line_no));
    SPES_ASSIGN_OR_RETURN(hb.cold_starts,
                          GetUint64(obj, "cold_starts", line_no));
    SPES_ASSIGN_OR_RETURN(
        hb.loaded_instance_minutes,
        GetUint64Or(obj, "loaded_instance_minutes", 0, line_no));
    SPES_ASSIGN_OR_RETURN(
        hb.wasted_memory_minutes,
        GetUint64Or(obj, "wasted_memory_minutes", 0, line_no));
    SPES_ASSIGN_OR_RETURN(const uint64_t loaded,
                          GetUint64Or(obj, "loaded", 0, line_no));
    hb.loaded_instances = static_cast<uint32_t>(loaded);
    SPES_ASSIGN_OR_RETURN(const uint64_t depth,
                          GetUint64Or(obj, "queue_depth", 0, line_no));
    hb.queue_depth = static_cast<uint32_t>(depth);
    SPES_ASSIGN_OR_RETURN(hb.t, GetNumber(obj, "t", line_no));
    out->heartbeats.push_back(hb);
  } else if (kind == "cache") {
    SPES_ASSIGN_OR_RETURN(const std::string op,
                          GetString(obj, "op", line_no));
    if (op == "hit") {
      ++out->cache.hits;
    } else if (op == "miss") {
      ++out->cache.misses;
    } else if (op == "pack") {
      ++out->cache.packs;
    } else {
      return LineError(line_no, "unknown cache op '" + op + "'");
    }
  } else if (kind == "decoder") {
    SPES_ASSIGN_OR_RETURN(const uint64_t blocks,
                          GetUint64(obj, "blocks", line_no));
    SPES_ASSIGN_OR_RETURN(const uint64_t invocations,
                          GetUint64(obj, "invocations", line_no));
    out->decoder.blocks += blocks;
    out->decoder.invocations += invocations;
  } else if (kind == "checkpoint") {
    SPES_ASSIGN_OR_RETURN(const std::string op,
                          GetString(obj, "op", line_no));
    if (op == "save") {
      ++out->checkpoint_saves;
    } else if (op == "restore") {
      ++out->checkpoint_restores;
    } else {
      return LineError(line_no, "unknown checkpoint op '" + op + "'");
    }
  } else if (kind == "config") {
    SPES_ASSIGN_OR_RETURN(const std::string key,
                          GetString(obj, "key", line_no));
    SPES_ASSIGN_OR_RETURN(const std::string value,
                          GetString(obj, "value", line_no));
    out->config.emplace_back(key, value);
  } else if (kind == "run_end") {
    SPES_ASSIGN_OR_RETURN(out->duration_seconds,
                          GetNumber(obj, "duration_seconds", line_no));
    out->saw_run_end = true;
  }
  // Unknown kinds are skipped: newer writers may add events this
  // reader does not know, and that must not break analysis.
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------

FileLogSink::FileLogSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
}

FileLogSink::~FileLogSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileLogSink::WriteLine(const std::string& line) {
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void FileLogSink::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : object_items) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

Result<ParsedRunLog> ParseRunLog(const std::string& text) {
  ParsedRunLog log;
  size_t line_no = 0;
  size_t pos = 0;
  bool saw_header = false;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    const Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      return LineError(line_no, parsed.status().message());
    }
    const JsonValue& obj = parsed.ValueOrDie();
    if (obj.kind != JsonValue::Kind::kObject) {
      return LineError(line_no, "event is not a JSON object");
    }
    SPES_ASSIGN_OR_RETURN(const std::string kind,
                          GetString(obj, "ev", line_no));
    if (!saw_header) {
      if (kind != "run_start") {
        return LineError(line_no, "first event must be run_start, got '" +
                                      kind + "'");
      }
      SPES_ASSIGN_OR_RETURN(const int schema,
                            GetInt(obj, "schema", line_no));
      if (schema != kRunLogSchemaVersion) {
        return LineError(
            line_no, "unsupported schema version " + std::to_string(schema) +
                         " (this reader speaks " +
                         std::to_string(kRunLogSchemaVersion) + ")");
      }
      log.schema = schema;
      SPES_ASSIGN_OR_RETURN(log.label,
                            GetStringOr(obj, "label", "", line_no));
      saw_header = true;
    } else if (kind == "run_start") {
      return LineError(line_no, "duplicate run_start");
    } else {
      SPES_RETURN_NOT_OK(ApplyEvent(obj, kind, line_no, &log));
    }
    ++log.num_events;
  }
  if (!saw_header) {
    return Status::InvalidArgument(
        "run log is empty: expected a run_start header line");
  }
  return log;
}

Result<ParsedRunLog> ReadRunLogFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open run log '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IOError("error reading run log '" + path + "'");
  }
  return ParseRunLog(text);
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  // One Perfetto track per (slot, lane): a logical-index tid keeps the
  // view identical at any thread count.
  const auto track_id = [](const SpanRecord& span) {
    return span.slot * 1024 + span.lane;
  };

  std::string out = "{\"traceEvents\":[";
  bool first = true;

  // Track-name metadata, in first-appearance order.
  std::vector<int> seen_tracks;
  for (const SpanRecord& span : spans) {
    const int tid = track_id(span);
    bool known = false;
    for (const int t : seen_tracks) {
      if (t == tid) {
        known = true;
        break;
      }
    }
    if (known) continue;
    seen_tracks.push_back(tid);
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           JsonEscape("slot " + std::to_string(span.slot) + " / lane " +
                      std::to_string(span.lane)) +
           "}}";
  }

  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":" +
           std::to_string(track_id(span)) +
           ",\"ts\":" + JsonNumber(span.t * 1e6) +
           ",\"dur\":" + JsonNumber(span.dur * 1e6) +
           ",\"name\":" + JsonEscape(span.name);
    if (!span.detail.empty()) {
      out += ",\"args\":{\"detail\":" + JsonEscape(span.detail) + "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace spes
