// RunRecorder: the opt-in observability spine of a run.
//
// A RunRecorder turns wall-clock phases (spans), strided per-minute
// heartbeats and subsystem events (TraceCache hits, decoder work,
// checkpoint save/restore) into a schema-versioned JSONL run log
// (obs/run_log.h) through a pluggable sink, and can export the spans as
// Chrome trace-event JSON for Perfetto / chrome://tracing.
//
// The recorder is strictly write-only with respect to the simulation:
// it reads counters, never produces values that feed simulation state.
// The seed-99 goldens pin this — recorder-enabled runs must stay
// bitwise-identical to disabled runs. All member functions are
// thread-safe (SuiteRunner workers and cluster lanes emit
// concurrently); events carry logical slot/lane indices, never thread
// ids, so the recorded shape is stable at any thread count.

#ifndef SPES_OBS_RECORDER_H_
#define SPES_OBS_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/run_log.h"

namespace spes {

/// \brief Knobs for a RunRecorder (namespace-scope so it can be a
/// default argument while RunRecorder is still incomplete; use it as
/// RunRecorder::Options).
struct RunRecorderOptions {
  /// Minutes between per-lane heartbeat events. Engines emit a
  /// heartbeat when `(minute + 1 - start) % stride == 0` and on the
  /// final minute, so any stride samples the same sim states
  /// regardless of wall-clock speed.
  int heartbeat_minute_stride = 60;
  /// Free-form run label stamped into the run_start event.
  std::string label;
};

class RunRecorder {
 public:
  /// \brief Clock hook: returns monotonic seconds. Injectable so unit
  /// tests drive deterministic timestamps; defaults to
  /// spes::MonotonicSeconds (obs/clock.h).
  using ClockFn = double (*)();

  using Options = RunRecorderOptions;

  /// \brief Starts a recording: emits the run_start header immediately.
  /// The sink must outlive the recorder and is not owned.
  explicit RunRecorder(LogSink* sink, Options options = Options(),
                       ClockFn clock = nullptr);

  /// \brief Ends the recording if Finish() was never called.
  ~RunRecorder();

  RunRecorder(const RunRecorder&) = delete;
  RunRecorder& operator=(const RunRecorder&) = delete;

  /// \name Span tracing
  /// @{

  /// \brief Opens a wall-clock span; returns a token for EndSpan.
  uint64_t BeginSpan(const std::string& name, int slot, int lane,
                     const std::string& detail = "");

  /// \brief Closes a span: emits its JSONL event and retains it for the
  /// Chrome trace export. Unknown tokens are ignored.
  void EndSpan(uint64_t token);
  /// @}

  /// \brief Emits a `config` key/value event (options, specs, labels).
  void Config(const std::string& key, const std::string& value);

  /// Plain-integer snapshot of one lane-minute, mirroring LiveTotals
  /// plus the latency queue depth. Deliberately not the sim types:
  /// src/obs depends only on src/common.
  struct Heartbeat {
    int slot = 0;
    int lane = 0;
    int minute = 0;
    uint64_t invocations = 0;
    uint64_t cold_starts = 0;
    uint64_t loaded_instance_minutes = 0;
    uint64_t wasted_memory_minutes = 0;
    uint32_t loaded_instances = 0;
    uint32_t queue_depth = 0;
  };

  /// \brief Emits a `heartbeat` event.
  void EmitHeartbeat(const Heartbeat& heartbeat);

  /// \brief Emits a TraceCache `cache` event; op is hit/miss/pack.
  void CacheEvent(const std::string& op, const std::string& key);

  /// \brief Emits a `decoder` event summarizing ArrivalDecoder work.
  void DecoderEvent(int slot, uint64_t blocks, uint64_t invocations);

  /// \brief Emits a `checkpoint` event; op is save/restore.
  void CheckpointEvent(const std::string& op, int slot, uint64_t cursor);

  /// \brief Emits the run_end summary and flushes the sink. Idempotent;
  /// events arriving after Finish() are dropped.
  void Finish();

  /// \brief Stride for engine heartbeat emission (minutes).
  [[nodiscard]] int heartbeat_minute_stride() const {
    return options_.heartbeat_minute_stride;
  }

  /// \brief Snapshot of all closed spans so far.
  [[nodiscard]] std::vector<SpanRecord> spans() const;

  /// \brief Writes the closed spans as Chrome trace-event JSON.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct OpenSpan {
    uint64_t token = 0;
    SpanRecord record;  ///< t holds the absolute start until closed
  };

  /// Seconds since the recorder started, on the injected clock.
  double Elapsed() const { return clock_() - t0_; }

  /// Appends one line to the sink and bumps the event count.
  /// Caller holds mu_.
  void WriteLineLocked(const std::string& line);

  LogSink* sink_;
  Options options_;
  ClockFn clock_;
  double t0_ = 0.0;

  mutable std::mutex mu_;
  bool finished_ = false;
  uint64_t next_token_ = 1;
  uint64_t num_events_ = 0;
  std::vector<OpenSpan> open_spans_;
  std::vector<SpanRecord> closed_spans_;
};

/// \brief RAII span: opens on construction (when the recorder is
/// non-null), closes on destruction. The null-recorder form makes
/// instrumentation sites branch-free:
///
///     ScopedSpan span(options_.recorder, "simulate", slot, lane);
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(RunRecorder* recorder, const std::string& name, int slot,
             int lane, const std::string& detail = "")
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      token_ = recorder_->BeginSpan(name, slot, lane, detail);
    }
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : recorder_(other.recorder_), token_(other.token_) {
    other.recorder_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      recorder_ = other.recorder_;
      token_ = other.token_;
      other.recorder_ = nullptr;
    }
    return *this;
  }

  /// \brief Closes the span early (idempotent).
  void End() {
    if (recorder_ != nullptr) {
      recorder_->EndSpan(token_);
      recorder_ = nullptr;
    }
  }

 private:
  RunRecorder* recorder_ = nullptr;
  uint64_t token_ = 0;
};

}  // namespace spes

#endif  // SPES_OBS_RECORDER_H_
