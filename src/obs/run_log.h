// The schema-versioned JSONL run-log format: emit helpers, pluggable
// sinks, a hardened parser, and the Chrome trace-event export.
//
// A run log is a stream of one-line JSON objects. Every line carries an
// event kind `"ev"` and a time `"t"` (seconds since the recorder
// started, monotonic). The first line must be a `run_start` event whose
// `"schema"` equals kRunLogSchemaVersion; readers reject anything else
// so stale tooling never misreads a newer log. Unknown event kinds are
// skipped on read (forward compatibility); malformed JSON, a missing
// header or a bad schema are hard errors with line numbers — logs are
// untrusted input the moment they round-trip through disk.
//
// See docs/observability.md for the full event table and span
// hierarchy, and tools/spes_report.cc for the analyzer built on this
// parser.

#ifndef SPES_OBS_RUN_LOG_H_
#define SPES_OBS_RUN_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spes {

/// Current run-log schema version, stamped into `run_start` events.
/// Bump on any breaking change to event shapes.
inline constexpr int kRunLogSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// \brief Destination for run-log lines. Implementations need not be
/// thread-safe; RunRecorder serializes writes under its own mutex.
class LogSink {
 public:
  virtual ~LogSink() = default;

  /// \brief Consumes one complete JSON line (no trailing newline).
  virtual void WriteLine(const std::string& line) = 0;

  /// \brief Flushes buffered lines to durable storage, if any.
  virtual void Flush() {}
};

/// \brief Appends lines to a stdio file. Fails softly: if the file
/// cannot be opened, ok() is false and writes are dropped — a broken
/// log destination must never take down a simulation.
class FileLogSink : public LogSink {
 public:
  explicit FileLogSink(const std::string& path);
  ~FileLogSink() override;

  FileLogSink(const FileLogSink&) = delete;
  FileLogSink& operator=(const FileLogSink&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  void WriteLine(const std::string& line) override;
  void Flush() override;

 private:
  std::FILE* file_ = nullptr;
};

/// \brief Collects lines in memory; the test and report-unit sink.
class StringLogSink : public LogSink {
 public:
  void WriteLine(const std::string& line) override {
    buffer_.append(line);
    buffer_.push_back('\n');
  }

  [[nodiscard]] const std::string& contents() const { return buffer_; }

 private:
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// \brief One closed wall-clock span: a named phase with start time and
/// duration, attributed to a SuiteRunner slot and a stream lane / cluster
/// node. Slot and lane are logical indices — never thread ids — so the
/// same workload traces identically at any thread count.
struct SpanRecord {
  std::string name;    ///< phase name (realize/pack/train/simulate/...)
  std::string detail;  ///< free-form annotation (label, path, policy)
  int slot = 0;        ///< SuiteRunner job slot (0 outside a suite)
  int lane = 0;        ///< stream lane or cluster node id
  double t = 0.0;      ///< start, seconds since recorder start
  double dur = 0.0;    ///< duration in seconds

  bool operator==(const SpanRecord& other) const {
    return name == other.name && detail == other.detail &&
           slot == other.slot && lane == other.lane && t == other.t &&
           dur == other.dur;
  }
};

/// \brief One strided per-minute heartbeat: live fleet counters for one
/// lane at one simulated minute. Counter fields mirror LiveTotals plus
/// the latency queue depth (0 when the latency subsystem is off).
struct HeartbeatRecord {
  int slot = 0;
  int lane = 0;
  int minute = 0;
  uint64_t invocations = 0;
  uint64_t cold_starts = 0;
  uint64_t loaded_instance_minutes = 0;
  uint64_t wasted_memory_minutes = 0;
  uint32_t loaded_instances = 0;
  uint32_t queue_depth = 0;
  double t = 0.0;
};

/// \brief Aggregated TraceCache activity parsed from `cache` events.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t packs = 0;
};

/// \brief Aggregated ArrivalDecoder work parsed from `decoder` events.
struct DecoderStats {
  uint64_t blocks = 0;
  uint64_t invocations = 0;
};

/// \brief A run log parsed back into typed records, ready for the
/// spes_report tables and the Perfetto export.
struct ParsedRunLog {
  int schema = 0;
  std::string label;  ///< run label from run_start
  std::vector<std::pair<std::string, std::string>> config;  ///< in order
  std::vector<SpanRecord> spans;
  std::vector<HeartbeatRecord> heartbeats;
  CacheStats cache;
  DecoderStats decoder;
  uint64_t checkpoint_saves = 0;
  uint64_t checkpoint_restores = 0;
  bool saw_run_end = false;
  double duration_seconds = 0.0;  ///< from run_end (0 if truncated)
  size_t num_events = 0;          ///< total lines parsed (all kinds)
};

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// \brief A parsed JSON value. Objects preserve member order as a
/// vector of pairs (no unordered containers — linter rule R2), so
/// anything derived from a parse iterates deterministically.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::vector<std::pair<std::string, JsonValue>> object_items;

  /// \brief First member with the given key, or nullptr.
  [[nodiscard]] const JsonValue* Find(const std::string& key) const;
};

/// \brief Parses one JSON document (hardened: depth-bounded, rejects
/// trailing garbage). Run-log lines and user-supplied report inputs go
/// through this, so it must be total over arbitrary bytes.
Result<JsonValue> ParseJson(const std::string& text);

// ---------------------------------------------------------------------------
// Run-log parsing
// ---------------------------------------------------------------------------

/// \brief Parses a full JSONL run log. Strict on structure (bad JSON,
/// missing/invalid run_start header, wrong schema ⇒ InvalidArgument
/// with a line number), tolerant of unknown event kinds and of logs
/// truncated after the header (streaming writers die mid-run; the
/// prefix should still be analyzable).
Result<ParsedRunLog> ParseRunLog(const std::string& text);

/// \brief Reads and parses a run-log file.
Result<ParsedRunLog> ReadRunLogFile(const std::string& path);

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// \brief Renders spans as Chrome trace-event JSON (complete "X"
/// events) loadable in Perfetto / chrome://tracing. Each (slot, lane)
/// pair becomes one named track, so the view is stable across thread
/// counts.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

}  // namespace spes

#endif  // SPES_OBS_RUN_LOG_H_
