// Per-lane admission control: a bounded FIFO queue in front of a pool of
// concurrent execution slots.
//
// ConcurrencyQueue is the discrete-event core of the latency subsystem.
// It models one node (or one single-lane stream) as `concurrency` servers
// fed by a FIFO queue, advanced in *resolve-at-enqueue* style: each
// request's fate — start time, timeout, or shed — is decided the moment
// it is offered, from the queue state alone. Because requests are offered
// in the trace's canonical decode order and every computation is plain
// double arithmetic over that order, the outcome is a pure function of
// the offered sequence: bitwise-identical at any thread count, and
// serializable mid-window for checkpoint/restore.
//
// Time is a millisecond offset from the start of the simulated window
// (minute t spans [t*60000, (t+1)*60000)). Requests within a minute are
// spread evenly across it in decode order, which keeps burst minutes from
// collapsing onto one instant while staying derivable from the trace.

#ifndef SPES_LATENCY_QUEUE_H_
#define SPES_LATENCY_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace spes {

class BinaryWriter;  // common/binary_io.h
class BinaryReader;

/// \brief Admission parameters for one queue. The zero value of every
/// field means "off": unlimited concurrency, unbounded queue, no timeout.
struct QueueConfig {
  /// Concurrent execution slots; 0 = unlimited (no queueing at all).
  int concurrency = 0;
  /// Waiting requests admitted before shedding; 0 = unbounded.
  int queue_capacity = 0;
  /// Longest tolerated wait in ms; a request whose computed wait exceeds
  /// this times out (it never starts). 0 = wait forever.
  double timeout_ms = 0.0;

  bool operator==(const QueueConfig&) const = default;
};

/// \brief What happened to one offered request.
enum class Admission : uint8_t {
  kServed,    ///< ran to completion; end_to_end_ms is wait + service
  kTimedOut,  ///< waited past timeout_ms and gave up without running
  kShed,      ///< rejected on arrival: the queue was at capacity
};

/// \brief Offer() verdict. end_to_end_ms is meaningful only for kServed.
struct QueueOutcome {
  Admission admission = Admission::kServed;
  double end_to_end_ms = 0.0;
};

/// \brief One FIFO queue + server pool. Offer requests in nondecreasing
/// arrival-time order; call EndMinute() at each minute boundary to drain
/// departed waiters and sample the queue depth.
class ConcurrencyQueue {
 public:
  ConcurrencyQueue() = default;
  explicit ConcurrencyQueue(const QueueConfig& config) : config_(config) {}

  [[nodiscard]] const QueueConfig& config() const { return config_; }

  /// \brief Decides the fate of a request arriving at `arrival_ms` that
  /// needs `service_ms` of execution time. Arrival times must not
  /// decrease across calls (the minute-major loop guarantees this).
  QueueOutcome Offer(double arrival_ms, double service_ms);

  /// \brief Drains waiters who left the queue by `now_ms` (started
  /// service or timed out) and returns the remaining queue depth.
  size_t DrainUntil(double now_ms);

  /// \brief Waiting requests currently in the queue.
  [[nodiscard]] size_t depth() const { return leave_times_.size(); }

  /// \brief Appends the queue state (config + both heaps, canonically
  /// sorted) to `writer`.
  void SerializeTo(BinaryWriter* writer) const;

  /// \brief Parses bytes produced by SerializeTo(). Corrupt input
  /// (unsorted heaps, non-finite times, sizes past the remaining bytes)
  /// yields InvalidArgument.
  static Result<ConcurrencyQueue> ParseFrom(BinaryReader* reader);

  /// \brief Equality over the *multisets* of times (heap layout is an
  /// implementation detail; two queues that behave identically are equal).
  bool operator==(const ConcurrencyQueue& other) const;

 private:
  QueueConfig config_;
  /// Min-heap (std::greater) of busy servers' finish times. Size is
  /// capped at config_.concurrency; empty when concurrency is unlimited.
  std::vector<double> finish_times_;
  /// Min-heap (std::greater) of queued requests' leave times — the
  /// instant each waiter starts service or abandons on timeout. Only the
  /// multiset matters (FIFO order is implied by resolve-at-enqueue), so
  /// a sorted snapshot restores to an equivalent heap.
  std::vector<double> leave_times_;
};

}  // namespace spes

#endif  // SPES_LATENCY_QUEUE_H_
