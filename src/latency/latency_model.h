// Per-function service-time models for the latency subsystem.
//
// A LatencyModel turns one simulated request into a service time in
// milliseconds: a pure function of (cold?, key), where the key is a
// deterministic per-request hash derived from the function name, the
// seeded latency stream and the request's position in the trace
// (latency/latency.h). Because models carry no mutable state, sampling is
// bitwise-deterministic at any thread count, independent of routing, and
// checkpoint-safe for free — a restored run replays exactly the draws the
// original would have made.
//
// Models self-register in a LatencyModelRegistry mirroring
// Policy/Router/Transform registries: canonical lowercase names, typed
// ParamSpec schemas with defaults, Result<> errors naming the offending
// field, so a latency block names its model as data — `constant`,
// `lognormal{cold_median_ms=800,warm_median_ms=8}`.

#ifndef SPES_LATENCY_LATENCY_MODEL_H_
#define SPES_LATENCY_LATENCY_MODEL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/param_spec.h"

namespace spes {

/// \brief A latency model as data: canonical name plus parameter
/// overrides. Parameters not listed take the registered defaults.
using LatencyModelSpec = NamedSpec;

/// \brief Validated parameters handed to a registered model factory.
using LatencyModelParams = ParamMap;

/// \brief Parses `name{param=value,...}` into a LatencyModelSpec (same
/// grammar as policy specs; errors say "latency model ...").
Result<LatencyModelSpec> ParseLatencyModelSpec(const std::string& text);

/// \brief Inverse of ParseLatencyModelSpec: canonical `name{k=v,...}`
/// form with keys in lexicographic order; just `name` when no overrides.
std::string FormatLatencyModelSpec(const LatencyModelSpec& spec);

/// \brief Interface implemented by every service-time distribution.
/// SampleMs() must be a pure function of its arguments (no internal
/// state), so latency runs stay deterministic and resumable.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// \brief Human-readable model name used in reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// \brief Service time in milliseconds (>= 0, finite) for one request.
  /// `cold` selects the cold-start distribution; `key` is the request's
  /// deterministic hash (models that need randomness seed an Rng with it,
  /// models that do not simply ignore it).
  [[nodiscard]] virtual double SampleMs(bool cold, uint64_t key) const = 0;
};

/// \brief Builds a model instance from validated parameters. May reject
/// out-of-domain values (e.g. a negative median) with a Status.
using LatencyModelFactory =
    std::function<Result<std::unique_ptr<LatencyModel>>(
        const LatencyModelParams&)>;

/// \brief Name -> (schema, factory) table for latency models.
///
/// Global() holds every built-in model (`constant`, `lognormal`);
/// additional registries can be constructed freely, e.g. by tests.
class LatencyModelRegistry {
 public:
  /// \brief One registered model.
  struct Entry {
    /// Canonical lowercase identifier, e.g. "lognormal".
    std::string canonical_name;
    /// One-line human description for catalogs.
    std::string summary;
    /// Accepted parameters with defaults; order is the display order.
    std::vector<ParamSpec> params;
    LatencyModelFactory factory;
  };

  /// \brief Adds an entry. Fails with AlreadyExists when the name is
  /// taken and InvalidArgument on an empty name, a missing factory, or a
  /// duplicated parameter declaration.
  Status Register(Entry entry);

  /// \brief Builds a model from `spec`: unknown names yield NotFound
  /// (listing the registered alternatives); unknown parameters, type
  /// mismatches (ints coerce to doubles, nothing else converts) and
  /// rejected values yield InvalidArgument naming the offending field.
  [[nodiscard]] Result<std::unique_ptr<LatencyModel>> Create(
      const LatencyModelSpec& spec) const;

  /// \brief Convenience: Create(ParseLatencyModelSpec(text)).
  [[nodiscard]] Result<std::unique_ptr<LatencyModel>> CreateFromString(
      const std::string& text) const;

  /// \brief True when `name` is registered.
  [[nodiscard]] bool Contains(const std::string& name) const;

  /// \brief Registered canonical names in lexicographic order.
  [[nodiscard]] std::vector<std::string> Names() const;

  /// \brief Introspection: the entry for `name`, or nullptr when unknown.
  [[nodiscard]] const Entry* Find(const std::string& name) const;

  /// \brief The process-wide registry, with all built-in models
  /// registered on first use. Registration of additional entries is not
  /// synchronized; do it before fanning out worker threads.
  static LatencyModelRegistry& Global();

 private:
  std::map<std::string, Entry> entries_;
};

/// \brief Registers the built-in models (called by Global()).
void RegisterBuiltinLatencyModels(LatencyModelRegistry& registry);

}  // namespace spes

#endif  // SPES_LATENCY_LATENCY_MODEL_H_
