#include "latency/latency_model.h"

#include <utility>

namespace spes {

Result<LatencyModelSpec> ParseLatencyModelSpec(const std::string& text) {
  return ParseNamedSpec(text, "latency model");
}

std::string FormatLatencyModelSpec(const LatencyModelSpec& spec) {
  return FormatNamedSpec(spec);
}

Status LatencyModelRegistry::Register(Entry entry) {
  if (!IsSpecIdentifier(entry.canonical_name)) {
    return Status::InvalidArgument("latency model canonical name '" +
                                   entry.canonical_name +
                                   "' is not an identifier");
  }
  if (!entry.factory) {
    return Status::InvalidArgument("latency model '" + entry.canonical_name +
                                   "' registered without a factory");
  }
  SPES_RETURN_NOT_OK(
      ValidateParamSchema("latency model", entry.canonical_name, entry.params));
  const std::string name = entry.canonical_name;
  if (!entries_.emplace(name, std::move(entry)).second) {
    return Status::AlreadyExists("latency model '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<LatencyModel>> LatencyModelRegistry::Create(
    const LatencyModelSpec& spec) const {
  if (spec.name.empty()) {
    return Status::InvalidArgument("LatencyModelSpec.name must not be empty");
  }
  const Entry* entry = Find(spec.name);
  if (entry == nullptr) {
    return Status::NotFound("unknown latency model '" + spec.name +
                            "'; registered latency models: " +
                            JoinNames(Names()));
  }
  SPES_ASSIGN_OR_RETURN(LatencyModelParams params,
                        MergeSpecParams("latency model", spec, entry->params));
  return entry->factory(params);
}

Result<std::unique_ptr<LatencyModel>> LatencyModelRegistry::CreateFromString(
    const std::string& text) const {
  SPES_ASSIGN_OR_RETURN(const LatencyModelSpec spec,
                        ParseLatencyModelSpec(text));
  return Create(spec);
}

bool LatencyModelRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> LatencyModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

const LatencyModelRegistry::Entry* LatencyModelRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

LatencyModelRegistry& LatencyModelRegistry::Global() {
  static LatencyModelRegistry* registry = [] {
    auto* r = new LatencyModelRegistry();
    RegisterBuiltinLatencyModels(*r);
    return r;
  }();
  return *registry;
}

}  // namespace spes
