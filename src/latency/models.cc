// The built-in service-time models: constant, lognormal.
//
// Both are pure functions of (cold?, key). `lognormal` seeds a throwaway
// Rng from the request key for its single Gaussian draw, so the sample
// depends only on the key — never on how many requests ran before it —
// which is what keeps latency runs thread-count-invariant and resumable.

#include "latency/latency_model.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"

namespace spes {

namespace {

/// Salt folded into the key for cold draws so a model's cold and warm
/// distributions are independent streams even at the same key.
constexpr uint64_t kColdDrawSalt = 0xc01d5742a5a1f00dULL;

/// `constant` — degenerate distributions: every cold request takes
/// cold_ms, every warm request warm_ms. The key is ignored. Useful for
/// hand-computable tests and for isolating pure queueing effects.
class ConstantModel : public LatencyModel {
 public:
  ConstantModel(double cold_ms, double warm_ms)
      : cold_ms_(cold_ms), warm_ms_(warm_ms) {}

  std::string name() const override { return "constant"; }

  double SampleMs(bool cold, uint64_t /*key*/) const override {
    return cold ? cold_ms_ : warm_ms_;
  }

 private:
  double cold_ms_;
  double warm_ms_;
};

/// `lognormal` — median * exp(sigma * Z) with Z standard normal, the
/// classic heavy-tailed service-time shape (FaaS measurement studies
/// report lognormal-ish warm latencies with a fat cold tail). sigma=0
/// degenerates to the constant model at the medians.
class LognormalModel : public LatencyModel {
 public:
  LognormalModel(double cold_median_ms, double cold_sigma,
                 double warm_median_ms, double warm_sigma)
      : cold_median_ms_(cold_median_ms),
        cold_sigma_(cold_sigma),
        warm_median_ms_(warm_median_ms),
        warm_sigma_(warm_sigma) {}

  std::string name() const override { return "lognormal"; }

  double SampleMs(bool cold, uint64_t key) const override {
    Rng rng(cold ? key ^ kColdDrawSalt : key);
    const double z = rng.Normal(0.0, 1.0);
    return cold ? cold_median_ms_ * std::exp(cold_sigma_ * z)
                : warm_median_ms_ * std::exp(warm_sigma_ * z);
  }

 private:
  double cold_median_ms_;
  double cold_sigma_;
  double warm_median_ms_;
  double warm_sigma_;
};

constexpr double kMaxServiceMs = 1e9;  // ~11.6 days; caps pathological specs

}  // namespace

void RegisterBuiltinLatencyModels(LatencyModelRegistry& registry) {
  registry
      .Register(
          {"constant",
           "fixed service times: cold requests take cold_ms, warm requests "
           "warm_ms",
           {{"cold_ms", ParamType::kDouble, ParamValue(1000.0),
             "service time of a cold-start request, in milliseconds"},
            {"warm_ms", ParamType::kDouble, ParamValue(10.0),
             "service time of a warm request, in milliseconds"}},
           [](const LatencyModelParams& params)
               -> Result<std::unique_ptr<LatencyModel>> {
             SPES_ASSIGN_OR_RETURN(
                 const double cold_ms,
                 DoubleParamInRange(params, "constant", "cold_ms", 0.0,
                                    kMaxServiceMs));
             SPES_ASSIGN_OR_RETURN(
                 const double warm_ms,
                 DoubleParamInRange(params, "constant", "warm_ms", 0.0,
                                    kMaxServiceMs));
             return std::unique_ptr<LatencyModel>(
                 new ConstantModel(cold_ms, warm_ms));
           }})
      .CheckOK();
  registry
      .Register(
          {"lognormal",
           "seeded lognormal service times: median_ms * exp(sigma * Z) per "
           "request, separate cold/warm streams",
           {{"cold_median_ms", ParamType::kDouble, ParamValue(800.0),
             "median service time of a cold-start request, in milliseconds"},
            {"cold_sigma", ParamType::kDouble, ParamValue(0.5),
             "log-space spread of the cold distribution (0 = constant)"},
            {"warm_median_ms", ParamType::kDouble, ParamValue(8.0),
             "median service time of a warm request, in milliseconds"},
            {"warm_sigma", ParamType::kDouble, ParamValue(0.3),
             "log-space spread of the warm distribution (0 = constant)"}},
           [](const LatencyModelParams& params)
               -> Result<std::unique_ptr<LatencyModel>> {
             SPES_ASSIGN_OR_RETURN(
                 const double cold_median_ms,
                 DoubleParamInRange(params, "lognormal", "cold_median_ms", 0.0,
                                    kMaxServiceMs));
             SPES_ASSIGN_OR_RETURN(
                 const double cold_sigma,
                 DoubleParamInRange(params, "lognormal", "cold_sigma", 0.0,
                                    8.0));
             SPES_ASSIGN_OR_RETURN(
                 const double warm_median_ms,
                 DoubleParamInRange(params, "lognormal", "warm_median_ms", 0.0,
                                    kMaxServiceMs));
             SPES_ASSIGN_OR_RETURN(
                 const double warm_sigma,
                 DoubleParamInRange(params, "lognormal", "warm_sigma", 0.0,
                                    8.0));
             return std::unique_ptr<LatencyModel>(new LognormalModel(
                 cold_median_ms, cold_sigma, warm_median_ms, warm_sigma));
           }})
      .CheckOK();
}

}  // namespace spes
