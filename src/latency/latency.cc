#include "latency/latency.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/binary_io.h"
#include "common/rng.h"

namespace spes {

namespace {

/// Longest representable end-to-end sample: the histogram domain is
/// uint64 microseconds; anything beyond (pathological spec corners such
/// as lognormal with sigma near its cap) clamps to this, deterministically.
constexpr double kMaxSampleUs = 9.2e18;

/// Golden-ratio minute salt: decorrelates a function's per-minute request
/// streams without any carried RNG state (checkpoint-safe by construction).
constexpr uint64_t kMinuteSalt = 0x9e3779b97f4a7c15ULL;

std::string TrimCopy(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\n\r");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\n\r");
  return text.substr(begin, end - begin + 1);
}

constexpr double kMaxTimeoutMs = 1e9;

}  // namespace

const std::vector<ParamSpec>& LatencyQueueParamSchema() {
  static const std::vector<ParamSpec>* schema = new std::vector<ParamSpec>{
      {"concurrency", ParamType::kInt, ParamValue(0),
       "concurrent execution slots per lane/node; 0 = unlimited"},
      {"capacity", ParamType::kInt, ParamValue(0),
       "queue slots before arrivals are shed; 0 = unbounded"},
      {"timeout_ms", ParamType::kDouble, ParamValue(0.0),
       "longest tolerated queue wait in milliseconds; 0 = wait forever"},
      {"seed", ParamType::kInt, ParamValue(0),
       "seed of the per-request service-time sampling stream"},
  };
  return *schema;
}

Result<LatencySpec> ParseLatencySpec(const std::string& text) {
  // Split at the first top-level '@' (brace depth 0); the separator can
  // never occur inside a name{...} block, whose grammar has no '@'.
  size_t at = std::string::npos;
  int depth = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}') --depth;
    if (text[i] == '@' && depth == 0) {
      at = i;
      break;
    }
  }
  const std::string model_text =
      TrimCopy(at == std::string::npos ? text : text.substr(0, at));
  LatencySpec spec;
  SPES_ASSIGN_OR_RETURN(spec.model, ParseLatencyModelSpec(model_text));
  if (at == std::string::npos) return spec;

  const std::string queue_text = TrimCopy(text.substr(at + 1));
  SPES_ASSIGN_OR_RETURN(const NamedSpec queue_spec,
                        ParseNamedSpec(queue_text, "latency queue"));
  if (queue_spec.name != "queue") {
    return Status::InvalidArgument(
        "latency block after '@' must be a queue{...} spec, got '" +
        queue_spec.name + "'");
  }
  SPES_ASSIGN_OR_RETURN(
      const ParamMap params,
      MergeSpecParams("latency queue", queue_spec, LatencyQueueParamSchema()));
  SPES_ASSIGN_OR_RETURN(const int64_t concurrency,
                        IntParamInRange(params, "queue", "concurrency", 0));
  SPES_ASSIGN_OR_RETURN(const int64_t capacity,
                        IntParamInRange(params, "queue", "capacity", 0));
  SPES_ASSIGN_OR_RETURN(
      spec.timeout_ms,
      DoubleParamInRange(params, "queue", "timeout_ms", 0.0, kMaxTimeoutMs));
  SPES_ASSIGN_OR_RETURN(
      const int64_t seed,
      IntParamInRange(params, "queue", "seed", 0,
                      std::numeric_limits<int64_t>::max()));
  spec.concurrency = static_cast<int>(concurrency);
  spec.queue_capacity = static_cast<int>(capacity);
  spec.seed = static_cast<uint64_t>(seed);
  return spec;
}

std::string FormatLatencySpec(const LatencySpec& spec) {
  std::string out = FormatLatencyModelSpec(spec.model);
  NamedSpec queue{"queue", {}};
  if (spec.concurrency != 0) {
    queue.params["concurrency"] = ParamValue(int64_t{spec.concurrency});
  }
  if (spec.queue_capacity != 0) {
    queue.params["capacity"] = ParamValue(int64_t{spec.queue_capacity});
  }
  if (spec.timeout_ms != 0.0) {
    queue.params["timeout_ms"] = ParamValue(spec.timeout_ms);
  }
  if (spec.seed != 0) {
    queue.params["seed"] = ParamValue(static_cast<int64_t>(spec.seed));
  }
  if (!queue.params.empty()) out += " @ " + FormatNamedSpec(queue);
  return out;
}

Status ValidateLatencySpec(const LatencySpec& spec) {
  SPES_ASSIGN_OR_RETURN(const std::unique_ptr<LatencyModel> model,
                        LatencyModelRegistry::Global().Create(spec.model));
  (void)model;
  if (spec.concurrency < 0) {
    return Status::InvalidArgument(
        "LatencySpec.concurrency must be >= 0 (0 = unlimited)");
  }
  if (spec.queue_capacity < 0) {
    return Status::InvalidArgument(
        "LatencySpec.queue_capacity must be >= 0 (0 = unbounded)");
  }
  if (!std::isfinite(spec.timeout_ms) || spec.timeout_ms < 0.0 ||
      spec.timeout_ms > kMaxTimeoutMs) {
    return Status::InvalidArgument(
        "LatencySpec.timeout_ms must be a finite value in [0, 1e9]");
  }
  if (spec.concurrency == 0 &&
      (spec.queue_capacity > 0 || spec.timeout_ms > 0.0)) {
    return Status::InvalidArgument(
        "latency queue capacity/timeout_ms require a concurrency limit: "
        "with unlimited slots nothing ever queues, so they would be "
        "silent no-ops");
  }
  return Status::OK();
}

std::vector<uint64_t> ComputeFunctionHashes(const TraceSource& source,
                                            uint64_t seed) {
  std::vector<uint64_t> hashes;
  hashes.reserve(source.num_functions());
  for (size_t f = 0; f < source.num_functions(); ++f) {
    hashes.push_back(MixNameSeed(source.function_meta(f).name, seed));
  }
  return hashes;
}

void FinalizeLatencyOutcome(LatencyOutcome* outcome) {
  outcome->p50_ms = static_cast<double>(outcome->histogram.ValueAtQuantile(0.50)) / 1000.0;
  outcome->p95_ms = static_cast<double>(outcome->histogram.ValueAtQuantile(0.95)) / 1000.0;
  outcome->p99_ms = static_cast<double>(outcome->histogram.ValueAtQuantile(0.99)) / 1000.0;
  outcome->mean_ms = outcome->histogram.Mean() / 1000.0;
  outcome->max_ms = static_cast<double>(outcome->histogram.Max()) / 1000.0;
  const uint64_t offered = outcome->offered();
  outcome->timeout_rate =
      offered == 0 ? 0.0
                   : static_cast<double>(outcome->timeouts) /
                         static_cast<double>(offered);
  outcome->shed_rate = offered == 0
                           ? 0.0
                           : static_cast<double>(outcome->shed) /
                                 static_cast<double>(offered);
  outcome->max_queue_depth = 0;
  for (uint32_t depth : outcome->queue_depth_series) {
    outcome->max_queue_depth = std::max(outcome->max_queue_depth, depth);
  }
}

void MergeLatencyOutcome(LatencyOutcome* dst, const LatencyOutcome& src) {
  dst->histogram.Merge(src.histogram);
  dst->served += src.served;
  dst->cold_served += src.cold_served;
  dst->timeouts += src.timeouts;
  dst->shed += src.shed;
  if (dst->queue_depth_series.size() < src.queue_depth_series.size()) {
    dst->queue_depth_series.resize(src.queue_depth_series.size(), 0);
  }
  for (size_t i = 0; i < src.queue_depth_series.size(); ++i) {
    dst->queue_depth_series[i] += src.queue_depth_series[i];
  }
}

LatencyLane::LatencyLane(
    std::unique_ptr<const LatencyModel> model, const LatencySpec& spec,
    std::shared_ptr<const std::vector<uint64_t>> function_hashes)
    : model_(std::move(model)),
      spec_(spec),
      function_hashes_(std::move(function_hashes)),
      queue_(QueueConfig{spec.concurrency, spec.queue_capacity,
                         spec.timeout_ms}) {}

void LatencyLane::OnMinute(int minute,
                           const std::vector<Invocation>& arrivals,
                           const std::vector<uint8_t>& cold_flags) {
  const double minute_start = static_cast<double>(minute) * 60000.0;
  uint64_t total = 0;
  for (const Invocation& inv : arrivals) total += inv.count;
  // Spread the minute's requests evenly across it in decode order: burst
  // minutes contend at the queue instead of collapsing onto one instant,
  // and the offsets are a pure function of the trace.
  const double spacing =
      total > 0 ? 60000.0 / static_cast<double>(total) : 0.0;
  const uint64_t minute_salt =
      kMinuteSalt * (static_cast<uint64_t>(minute) + 1);
  uint64_t j = 0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const Invocation& inv = arrivals[i];
    const uint64_t base = (*function_hashes_)[inv.function] ^ minute_salt;
    const bool cold_arrival = cold_flags[i] != 0;
    for (uint32_t k = 0; k < inv.count; ++k, ++j) {
      uint64_t state = base + k;
      const uint64_t key = SplitMix64(&state);
      // Concurrent arrivals share the freshly started instance (§V-A):
      // only the arrival's first request pays the cold distribution.
      const bool cold = cold_arrival && k == 0;
      const double service_ms = model_->SampleMs(cold, key);
      const double arrival_ms =
          minute_start + static_cast<double>(j) * spacing;
      const QueueOutcome result = queue_.Offer(arrival_ms, service_ms);
      switch (result.admission) {
        case Admission::kServed: {
          const double us = result.end_to_end_ms * 1000.0 + 0.5;
          outcome_.histogram.Record(
              us >= kMaxSampleUs ? static_cast<uint64_t>(kMaxSampleUs)
                                 : static_cast<uint64_t>(us));
          ++outcome_.served;
          if (cold) ++outcome_.cold_served;
          break;
        }
        case Admission::kTimedOut:
          ++outcome_.timeouts;
          break;
        case Admission::kShed:
          ++outcome_.shed;
          break;
      }
    }
  }
  const size_t depth = queue_.DrainUntil(minute_start + 60000.0);
  outcome_.queue_depth_series.push_back(static_cast<uint32_t>(depth));
  live_ = {outcome_.served, outcome_.timeouts, outcome_.shed,
           static_cast<uint32_t>(depth)};
}

LatencyOutcome LatencyLane::TakeOutcome() {
  FinalizeLatencyOutcome(&outcome_);
  LatencyOutcome out = std::move(outcome_);
  outcome_ = LatencyOutcome{};
  return out;
}

std::string LatencyLane::SaveState() const {
  BinaryWriter writer;
  queue_.SerializeTo(&writer);
  outcome_.histogram.SerializeTo(&writer);
  writer.PutVarU64(outcome_.served);
  writer.PutVarU64(outcome_.cold_served);
  writer.PutVarU64(outcome_.timeouts);
  writer.PutVarU64(outcome_.shed);
  writer.PutVarU64(outcome_.queue_depth_series.size());
  for (uint32_t depth : outcome_.queue_depth_series) {
    writer.PutVarU32(depth);
  }
  return writer.Take();
}

Status LatencyLane::RestoreState(const std::string& bytes,
                                 size_t expected_minutes) {
  BinaryReader reader(bytes);
  SPES_ASSIGN_OR_RETURN(ConcurrencyQueue queue,
                        ConcurrencyQueue::ParseFrom(&reader));
  if (queue.config() !=
      QueueConfig{spec_.concurrency, spec_.queue_capacity,
                  spec_.timeout_ms}) {
    return Status::InvalidArgument(
        "latency state was captured under a different queue config");
  }
  LatencyOutcome outcome;
  SPES_ASSIGN_OR_RETURN(outcome.histogram,
                        FixedBucketHistogram::ParseFrom(&reader));
  SPES_ASSIGN_OR_RETURN(outcome.served, reader.VarU64());
  SPES_ASSIGN_OR_RETURN(outcome.cold_served, reader.VarU64());
  SPES_ASSIGN_OR_RETURN(outcome.timeouts, reader.VarU64());
  SPES_ASSIGN_OR_RETURN(outcome.shed, reader.VarU64());
  if (outcome.cold_served > outcome.served) {
    return Status::InvalidArgument(
        "corrupt latency state: cold_served exceeds served");
  }
  if (outcome.histogram.TotalCount() != outcome.served) {
    return Status::InvalidArgument(
        "corrupt latency state: histogram holds " +
        std::to_string(outcome.histogram.TotalCount()) +
        " samples but served says " + std::to_string(outcome.served));
  }
  SPES_ASSIGN_OR_RETURN(const uint64_t series_size, reader.VarLength(1));
  if (series_size != expected_minutes) {
    return Status::InvalidArgument(
        "latency state covers " + std::to_string(series_size) +
        " minutes but the stream position implies " +
        std::to_string(expected_minutes));
  }
  outcome.queue_depth_series.reserve(static_cast<size_t>(series_size));
  for (uint64_t i = 0; i < series_size; ++i) {
    SPES_ASSIGN_OR_RETURN(const uint32_t depth, reader.VarU32());
    outcome.queue_depth_series.push_back(depth);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "corrupt latency state: " + std::to_string(reader.remaining()) +
        " trailing bytes");
  }
  queue_ = std::move(queue);
  outcome_ = std::move(outcome);
  live_ = {outcome_.served, outcome_.timeouts, outcome_.shed,
           outcome_.queue_depth_series.empty()
               ? 0
               : outcome_.queue_depth_series.back()};
  return Status::OK();
}

Result<std::unique_ptr<LatencyLane>> CreateLatencyLane(
    const LatencySpec& spec,
    std::shared_ptr<const std::vector<uint64_t>> function_hashes) {
  SPES_RETURN_NOT_OK(ValidateLatencySpec(spec));
  SPES_ASSIGN_OR_RETURN(std::unique_ptr<LatencyModel> model,
                        LatencyModelRegistry::Global().Create(spec.model));
  return std::make_unique<LatencyLane>(
      std::unique_ptr<const LatencyModel>(std::move(model)), spec,
      std::move(function_hashes));
}

}  // namespace spes
