// The latency subsystem's engine-facing layer: the latency block of a
// simulation (model + queue config), the per-lane state machine advanced
// by the minute-major loop, and the per-run outcome with p50/p95/p99 SLO
// summaries.
//
// A latency block is written `<model> @ queue{...}`:
//
//   lognormal{cold_median_ms=900} @ queue{concurrency=64,timeout_ms=2000}
//
// The left side names a LatencyModel (latency/latency_model.h); the
// optional right side configures admission: `concurrency` execution slots
// per lane/node, `capacity` queue slots before shedding, `timeout_ms`
// abandonment, and the `seed` of the per-request sampling stream. The
// whole block is opt-in — SimOptions without one runs byte-identical to
// an engine without this subsystem.
//
// Determinism: every request's service time is a pure function of
// (function name, seed, minute, intra-minute index), so outcomes are
// bitwise-identical at any thread count, independent of routing history,
// and resumable mid-window (SaveState/RestoreState serialize the queue
// and histogram through the hardened binary_io).

#ifndef SPES_LATENCY_LATENCY_H_
#define SPES_LATENCY_LATENCY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "latency/latency_model.h"
#include "latency/queue.h"
#include "trace/trace_source.h"

namespace spes {

/// \brief The parsed latency block of a scenario: which service-time
/// model to sample and how each lane/node admits requests. The default
/// queue fields are all "off" (unlimited concurrency, no shedding, no
/// timeout), matching a bare `<model>` spec with no `@ queue{...}` part.
struct LatencySpec {
  LatencyModelSpec model{"constant", {}};
  /// Concurrent execution slots per lane/node; 0 = unlimited.
  int concurrency = 0;
  /// Queue slots before arrivals are shed; 0 = unbounded.
  int queue_capacity = 0;
  /// Longest tolerated queue wait in ms; 0 = wait forever.
  double timeout_ms = 0.0;
  /// Seed of the per-request sampling stream (mixed with each function's
  /// name, so streams are stable under fleet reordering).
  uint64_t seed = 0;

  bool operator==(const LatencySpec&) const = default;
};

/// \brief Parses `<model spec> [@ queue{concurrency=..,capacity=..,
/// timeout_ms=..,seed=..}]`. Unknown queue parameters, out-of-range
/// values, and malformed model specs yield InvalidArgument/NotFound with
/// the offending field named.
Result<LatencySpec> ParseLatencySpec(const std::string& text);

/// \brief Inverse of ParseLatencySpec: canonical form with the queue
/// block omitted when every queue field is at its default, and only
/// non-default queue parameters listed (lexicographic order). Reparsing
/// the result reproduces `spec` (format→reparse fixed point).
std::string FormatLatencySpec(const LatencySpec& spec);

/// \brief Semantic validation beyond parsing: the model must build
/// against LatencyModelRegistry::Global(), numeric fields must be in
/// range, and `capacity`/`timeout_ms` require a concurrency limit (with
/// unlimited slots nothing ever queues, so either would silently be a
/// no-op — rejected as a likely misconfiguration).
Status ValidateLatencySpec(const LatencySpec& spec);

/// \brief The declared `queue{...}` parameter schema, for catalogs.
const std::vector<ParamSpec>& LatencyQueueParamSchema();

/// \brief Per-function sampling-stream keys: MixNameSeed(name, seed) for
/// every function in `source`. Computed once per run and shared across
/// lanes/nodes (the keys depend only on names, never on placement).
std::vector<uint64_t> ComputeFunctionHashes(const TraceSource& source,
                                            uint64_t seed);

/// \brief O(1) live latency counters carried by each MinuteView when the
/// subsystem is enabled (sim/observer.h).
struct LatencyLiveTotals {
  uint64_t served = 0;    ///< requests that ran to completion
  uint64_t timeouts = 0;  ///< abandoned waiting past timeout_ms
  uint64_t shed = 0;      ///< rejected on arrival (queue at capacity)
  uint32_t queue_depth = 0;  ///< waiters at the end of the latest minute

  bool operator==(const LatencyLiveTotals&) const = default;
};

/// \brief Latency outcome of one lane/node (or, merged, a fleet): the
/// end-to-end histogram, admission counters, per-minute queue depth, and
/// — after FinalizeLatencyOutcome() — the derived SLO summary.
struct LatencyOutcome {
  /// End-to-end (queue wait + service) times of served requests, in
  /// microseconds. Fixed-geometry, so per-node histograms merge exactly.
  FixedBucketHistogram histogram;
  uint64_t served = 0;
  uint64_t cold_served = 0;  ///< served requests that paid a cold start
  uint64_t timeouts = 0;
  uint64_t shed = 0;
  /// Queue depth at the end of each simulated minute (for a merged fleet
  /// outcome: summed across nodes, minute by minute).
  std::vector<uint32_t> queue_depth_series;

  /// \name Derived SLO summary, filled by FinalizeLatencyOutcome().
  /// @{
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double timeout_rate = 0.0;  ///< timeouts / offered
  double shed_rate = 0.0;     ///< shed / offered
  uint32_t max_queue_depth = 0;
  /// @}

  /// \brief Requests offered to the lane: served + timeouts + shed.
  [[nodiscard]] uint64_t offered() const { return served + timeouts + shed; }

  bool operator==(const LatencyOutcome&) const = default;
};

/// \brief Recomputes the derived SLO fields from the raw counters.
void FinalizeLatencyOutcome(LatencyOutcome* outcome);

/// \brief Folds `src` into `dst` exactly: histograms and counters add,
/// depth series sum minute-by-minute (shorter series are zero-extended).
/// Call FinalizeLatencyOutcome() afterwards to refresh the summary.
void MergeLatencyOutcome(LatencyOutcome* dst, const LatencyOutcome& src);

/// \brief The per-lane (SimStream) / per-node (ClusterSession) latency
/// state machine: one ConcurrencyQueue plus the accumulating outcome,
/// advanced once per simulated minute in lockstep with the columnar loop.
/// Not thread-safe; owned and driven by exactly one lane.
class LatencyLane {
 public:
  /// `model` samples service times; `function_hashes` is the shared
  /// ComputeFunctionHashes() table (borrowed via shared_ptr so lockstep
  /// lanes and cluster nodes share one copy).
  LatencyLane(std::unique_ptr<const LatencyModel> model,
              const LatencySpec& spec,
              std::shared_ptr<const std::vector<uint64_t>> function_hashes);

  /// \brief Feeds one simulated minute: `arrivals[i].count` requests per
  /// entry, spread evenly across the minute in decode order.
  /// `cold_flags[i]` says arrival i hit an unloaded function — its first
  /// request samples the cold distribution, the rest (and all other
  /// arrivals) the warm one, mirroring the engine's one-cold-start-per-
  /// arrival-minute accounting.
  void OnMinute(int minute, const std::vector<Invocation>& arrivals,
                const std::vector<uint8_t>& cold_flags);

  [[nodiscard]] const LatencyLiveTotals& live() const { return live_; }

  /// \brief Queue depth observed at the end of each simulated minute.
  [[nodiscard]] const std::vector<uint32_t>& queue_depth_series() const {
    return outcome_.queue_depth_series;
  }

  /// \brief Finalizes and moves out the accumulated outcome.
  [[nodiscard]] LatencyOutcome TakeOutcome();

  /// \brief Serializes queue + histogram + counters for checkpoints.
  [[nodiscard]] std::string SaveState() const;

  /// \brief Restores a SaveState() blob. `expected_minutes` is the number
  /// of minutes the restored-to stream has already simulated; a blob
  /// whose depth series disagrees (or any corrupt field) yields
  /// InvalidArgument.
  Status RestoreState(const std::string& bytes, size_t expected_minutes);

 private:
  std::unique_ptr<const LatencyModel> model_;
  LatencySpec spec_;
  std::shared_ptr<const std::vector<uint64_t>> function_hashes_;
  ConcurrencyQueue queue_;
  LatencyOutcome outcome_;  ///< derived fields stay 0 until TakeOutcome()
  LatencyLiveTotals live_;
};

/// \brief Builds a LatencyLane from a validated spec: creates the model
/// via LatencyModelRegistry::Global() and wires the queue config.
Result<std::unique_ptr<LatencyLane>> CreateLatencyLane(
    const LatencySpec& spec,
    std::shared_ptr<const std::vector<uint64_t>> function_hashes);

}  // namespace spes

#endif  // SPES_LATENCY_LATENCY_H_
