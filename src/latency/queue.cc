#include "latency/queue.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/binary_io.h"

namespace spes {

namespace {

constexpr auto kMinHeap = std::greater<>{};

/// Sorted-ascending snapshot of a min-heap: the canonical serialized
/// layout (and itself a valid min-heap, so restore needs no re-heapify).
std::vector<double> SortedCopy(const std::vector<double>& heap) {
  std::vector<double> sorted = heap;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void PutHeap(BinaryWriter* writer, const std::vector<double>& heap) {
  const std::vector<double> sorted = SortedCopy(heap);
  writer->PutVarU64(sorted.size());
  for (double t : sorted) writer->PutDouble(t);
}

Result<std::vector<double>> ReadHeap(BinaryReader* reader,
                                     const char* which) {
  SPES_ASSIGN_OR_RETURN(const uint64_t size, reader->VarLength(8));
  std::vector<double> heap;
  heap.reserve(static_cast<size_t>(size));
  for (uint64_t i = 0; i < size; ++i) {
    SPES_ASSIGN_OR_RETURN(const double t, reader->Double());
    if (!std::isfinite(t) || t < 0.0) {
      return Status::InvalidArgument(
          std::string("corrupt queue state: ") + which +
          " holds a negative or non-finite time");
    }
    if (!heap.empty() && t < heap.back()) {
      return Status::InvalidArgument(
          std::string("corrupt queue state: ") + which +
          " times are not sorted ascending");
    }
    heap.push_back(t);
  }
  return heap;
}

}  // namespace

QueueOutcome ConcurrencyQueue::Offer(double arrival_ms, double service_ms) {
  DrainUntil(arrival_ms);
  if (config_.concurrency <= 0) {
    // Unlimited slots: every request starts on arrival, nothing queues.
    return {Admission::kServed, service_ms};
  }
  // Invariant: any waiter still queued leaves strictly after arrival_ms,
  // which means every server is busy past arrival_ms too — so a full
  // queue implies this request would wait, and shedding it is sound.
  if (config_.queue_capacity > 0 &&
      leave_times_.size() >= static_cast<size_t>(config_.queue_capacity)) {
    return {Admission::kShed, 0.0};
  }
  const bool all_busy =
      finish_times_.size() >= static_cast<size_t>(config_.concurrency);
  const double start =
      all_busy ? std::max(arrival_ms, finish_times_.front()) : arrival_ms;
  const double wait = start - arrival_ms;
  if (config_.timeout_ms > 0.0 && wait > config_.timeout_ms) {
    // Abandons at arrival + timeout without ever starting; it occupies a
    // queue slot (and counts toward capacity) until that instant, but the
    // server pool never sees it.
    leave_times_.push_back(arrival_ms + config_.timeout_ms);
    std::push_heap(leave_times_.begin(), leave_times_.end(), kMinHeap);
    return {Admission::kTimedOut, 0.0};
  }
  if (all_busy) {
    std::pop_heap(finish_times_.begin(), finish_times_.end(), kMinHeap);
    finish_times_.pop_back();
  }
  finish_times_.push_back(start + service_ms);
  std::push_heap(finish_times_.begin(), finish_times_.end(), kMinHeap);
  if (wait > 0.0) {
    leave_times_.push_back(start);
    std::push_heap(leave_times_.begin(), leave_times_.end(), kMinHeap);
  }
  return {Admission::kServed, wait + service_ms};
}

size_t ConcurrencyQueue::DrainUntil(double now_ms) {
  while (!leave_times_.empty() && leave_times_.front() <= now_ms) {
    std::pop_heap(leave_times_.begin(), leave_times_.end(), kMinHeap);
    leave_times_.pop_back();
  }
  return leave_times_.size();
}

void ConcurrencyQueue::SerializeTo(BinaryWriter* writer) const {
  writer->PutVarU64(static_cast<uint64_t>(config_.concurrency));
  writer->PutVarU64(static_cast<uint64_t>(config_.queue_capacity));
  writer->PutDouble(config_.timeout_ms);
  PutHeap(writer, finish_times_);
  PutHeap(writer, leave_times_);
}

Result<ConcurrencyQueue> ConcurrencyQueue::ParseFrom(BinaryReader* reader) {
  ConcurrencyQueue queue;
  SPES_ASSIGN_OR_RETURN(const uint64_t concurrency, reader->VarU64());
  SPES_ASSIGN_OR_RETURN(const uint64_t capacity, reader->VarU64());
  constexpr uint64_t kMaxInt =
      static_cast<uint64_t>(std::numeric_limits<int>::max());
  if (concurrency > kMaxInt || capacity > kMaxInt) {
    return Status::InvalidArgument(
        "corrupt queue state: concurrency/capacity overflows int");
  }
  queue.config_.concurrency = static_cast<int>(concurrency);
  queue.config_.queue_capacity = static_cast<int>(capacity);
  SPES_ASSIGN_OR_RETURN(queue.config_.timeout_ms, reader->Double());
  if (!std::isfinite(queue.config_.timeout_ms) ||
      queue.config_.timeout_ms < 0.0) {
    return Status::InvalidArgument(
        "corrupt queue state: timeout_ms is negative or non-finite");
  }
  SPES_ASSIGN_OR_RETURN(queue.finish_times_,
                        ReadHeap(reader, "server pool"));
  SPES_ASSIGN_OR_RETURN(queue.leave_times_, ReadHeap(reader, "wait queue"));
  if (queue.config_.concurrency == 0 && !queue.finish_times_.empty()) {
    return Status::InvalidArgument(
        "corrupt queue state: busy servers with unlimited concurrency");
  }
  if (queue.config_.concurrency > 0 &&
      queue.finish_times_.size() >
          static_cast<size_t>(queue.config_.concurrency)) {
    return Status::InvalidArgument(
        "corrupt queue state: more busy servers than concurrency slots");
  }
  return queue;
}

bool ConcurrencyQueue::operator==(const ConcurrencyQueue& other) const {
  return config_ == other.config_ &&
         SortedCopy(finish_times_) == SortedCopy(other.finish_times_) &&
         SortedCopy(leave_times_) == SortedCopy(other.leave_times_);
}

}  // namespace spes
