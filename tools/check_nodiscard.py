#!/usr/bin/env python3
"""Compile-time negative tests for the [[nodiscard]] contract on
spes::Status and spes::Result<T> (src/common/status.h).

Two probe translation units are compiled against the real header with
`-Werror=unused-result`:

  * the BAD probe discards a returned Status and a returned Result<int>
    — it MUST fail to compile (that is the contract);
  * the GOOD probe consumes both and uses (void) for a deliberate drop
    — it MUST compile cleanly.

A regression that removes [[nodiscard]] (or breaks the header) flips one
of the two outcomes and fails this check. Runs with any C++20 compiler;
CI wires it into the lint job.

Usage: tools/check_nodiscard.py [--cxx g++]
Exit status: 0 on success, 1 on contract violation, 2 on setup error.
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

BAD_PROBE = """
#include "common/status.h"
using spes::Result;
using spes::Status;
Status MakeStatus() { return Status::InvalidArgument("x"); }
Result<int> MakeResult() { return Status::Internal("y"); }
void Discards() {
  MakeStatus();   // must not compile: discarded [[nodiscard]] Status
  MakeResult();   // must not compile: discarded [[nodiscard]] Result
}
"""

GOOD_PROBE = """
#include "common/status.h"
using spes::Result;
using spes::Status;
Status MakeStatus() { return Status::InvalidArgument("x"); }
Result<int> MakeResult() { return Status::Internal("y"); }
int Consumes() {
  Status checked = MakeStatus();
  (void)MakeStatus();  // sanctioned deliberate discard
  Result<int> r = MakeResult();
  if (!checked.ok() && !r.ok()) return 1;
  return 0;
}
"""


def compile_probe(cxx, src_dir, code, name):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"{name}.cc")
        with open(path, "w", encoding="utf-8") as f:
            f.write(code)
        proc = subprocess.run(
            [
                cxx,
                "-std=c++20",
                "-fsyntax-only",
                "-Werror=unused-result",
                f"-I{src_dir}",
                path,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        return proc.returncode == 0, proc.stdout


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cxx",
        default=os.environ.get("CXX", "c++"),
        help="C++ compiler to probe with (default: $CXX or c++)",
    )
    args = parser.parse_args()

    if shutil.which(args.cxx) is None:
        print(f"error: compiler not found: {args.cxx}", file=sys.stderr)
        return 2
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_dir = os.path.join(repo_root, "src")
    if not os.path.isfile(os.path.join(src_dir, "common", "status.h")):
        print("error: src/common/status.h not found", file=sys.stderr)
        return 2

    failures = 0

    ok, output = compile_probe(args.cxx, src_dir, BAD_PROBE, "discard_probe")
    if ok:
        print(
            "FAIL: the discarding probe compiled — Status/Result<> lost "
            "their [[nodiscard]] teeth",
            file=sys.stderr,
        )
        failures += 1
    elif "unused-result" not in output and "nodiscard" not in output:
        print(
            "FAIL: the discarding probe failed for an unrelated reason:\n"
            + output,
            file=sys.stderr,
        )
        failures += 1
    else:
        print("ok: discarded Status/Result is a compile error")

    ok, output = compile_probe(args.cxx, src_dir, GOOD_PROBE, "consume_probe")
    if not ok:
        print(
            "FAIL: the conforming probe did not compile:\n" + output,
            file=sys.stderr,
        )
        failures += 1
    else:
        print("ok: consuming / (void)-discarding compiles cleanly")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
