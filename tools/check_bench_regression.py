#!/usr/bin/env python3
"""Gate the simulation kernel's throughput against the committed baseline.

Reads two google-benchmark JSON files — the committed trajectory artifact
(BENCH_micro_hotpaths.json) and a fresh run — and fails when the fresh
items_per_second of any gated benchmark drops more than --tolerance
(default 20%) below the committed value.

Also enforces two machine-independent invariants inside the fresh run
itself (each compares two measurements from the same process on the same
machine, so they hold on any runner class):

  * --min-ratio R: BM_SimKernelColumnar must be at least R times faster
    (items/sec) than BM_SimKernelReference at every common fleet size.
  * --max-stream-overhead F: BM_TraceFileStreamDecode (the packed-file
    streaming decode) may be at most F times slower than BM_InMemoryDecode
    at every common fleet size — the out-of-core path must stay within a
    bounded factor of reading RAM.

Usage:
  tools/check_bench_regression.py BASELINE.json FRESH.json \
      [--tolerance 0.20] [--min-ratio 10] [--max-stream-overhead 6] \
      [--gate BM_SimKernelColumnar]
"""

import argparse
import json
import sys


def load_items_per_second(path):
    """Returns {benchmark name: items_per_second} for aggregate-free runs."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    result = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregates (mean/median/stddev) if present
        ips = bench.get("items_per_second")
        if ips is not None:
            result[bench["name"]] = float(ips)
    return result


def fleet_size(name):
    """'BM_SimKernelColumnar/4000' -> '4000' (or '' when unparameterized)."""
    return name.rsplit("/", 1)[1] if "/" in name else ""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json artifact")
    parser.add_argument("fresh", help="freshly produced benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="max allowed fractional drop vs the baseline")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="required columnar/reference items/sec ratio "
                             "within the fresh run")
    parser.add_argument("--max-stream-overhead", type=float, default=None,
                        help="max allowed in-memory/streamed decode "
                             "items/sec ratio within the fresh run")
    parser.add_argument("--gate", action="append", default=None,
                        help="benchmark name prefix to gate vs the baseline "
                             "(repeatable; default: BM_SimKernelColumnar)")
    args = parser.parse_args()
    gates = args.gate or ["BM_SimKernelColumnar"]

    baseline = load_items_per_second(args.baseline)
    fresh = load_items_per_second(args.fresh)
    failures = []

    for name, base_ips in sorted(baseline.items()):
        if not any(name.startswith(g) for g in gates):
            continue
        fresh_ips = fresh.get(name)
        if fresh_ips is None:
            failures.append(f"{name}: present in baseline, missing from "
                            f"the fresh run")
            continue
        drop = 1.0 - fresh_ips / base_ips
        status = "REGRESSED" if drop > args.tolerance else "ok"
        print(f"{name}: baseline {base_ips:.3e} -> fresh {fresh_ips:.3e} "
              f"items/s ({-drop:+.1%}) [{status}]")
        if drop > args.tolerance:
            failures.append(
                f"{name}: throughput dropped {drop:.1%} "
                f"(> {args.tolerance:.0%} tolerance)")

    if args.min_ratio is not None:
        columnar = {fleet_size(n): v for n, v in fresh.items()
                    if n.startswith("BM_SimKernelColumnar")}
        reference = {fleet_size(n): v for n, v in fresh.items()
                     if n.startswith("BM_SimKernelReference")}
        common = sorted(set(columnar) & set(reference))
        if not common:
            failures.append("--min-ratio given but the fresh run has no "
                            "common SimKernel Columnar/Reference sizes")
        for size in common:
            ratio = columnar[size] / reference[size]
            status = "ok" if ratio >= args.min_ratio else "TOO SLOW"
            print(f"SimKernel columnar/reference @ {size or 'default'} "
                  f"functions: {ratio:.1f}x [{status}]")
            if ratio < args.min_ratio:
                failures.append(
                    f"columnar kernel only {ratio:.1f}x the reference at "
                    f"{size or 'default'} functions "
                    f"(requires >= {args.min_ratio:g}x)")

    if args.max_stream_overhead is not None:
        in_memory = {fleet_size(n): v for n, v in fresh.items()
                     if n.startswith("BM_InMemoryDecode")}
        streamed = {fleet_size(n): v for n, v in fresh.items()
                    if n.startswith("BM_TraceFileStreamDecode")}
        common = sorted(set(in_memory) & set(streamed))
        if not common:
            failures.append("--max-stream-overhead given but the fresh run "
                            "has no common InMemory/TraceFileStream decode "
                            "sizes")
        for size in common:
            overhead = in_memory[size] / streamed[size]
            status = ("ok" if overhead <= args.max_stream_overhead
                      else "TOO SLOW")
            print(f"streamed decode overhead @ {size or 'default'} "
                  f"functions: {overhead:.2f}x [{status}]")
            if overhead > args.max_stream_overhead:
                failures.append(
                    f"streamed decode {overhead:.2f}x slower than in-memory "
                    f"at {size or 'default'} functions "
                    f"(allows <= {args.max_stream_overhead:g}x)")

    if failures:
        print("\nBENCH REGRESSION CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
