#!/usr/bin/env python3
"""Repo-specific determinism linter.

Enforces invariants that generic tooling (clang-tidy) cannot know about,
because they encode this repository's determinism contract (see
docs/correctness.md):

  R1 seeded-rng-only   No std::random_device / rand() / srand() / time() /
                       std::chrono::system_clock outside src/common/rng.*
                       and bench timing code (bench/). All stochastic
                       behaviour must flow through spes::Rng. The monotonic
                       clock (std::chrono::steady_clock) is likewise
                       confined: only src/obs/clock.{h,cc} (the library's
                       single wall-time read, see obs/clock.h), bench/,
                       and the standalone fuzz driver's timeout loop may
                       touch it — everything else calls
                       spes::MonotonicSeconds().
  R2 ordered-iteration No iteration over (or, conservatively, any mention
                       of) std::unordered_map / std::unordered_set in files
                       under src/metrics, src/sim, src/cluster, src/latency
                       or src/obs: these layers emit ordered output
                       (tables, series, goldens, run logs) and unordered
                       iteration order is not deterministic across
                       standard libraries.
  R3 registry-name     Every policy registration unit (a src/policies/*.cc
                       that references PolicyRegistry) must self-register
                       exactly one canonical name equal to its file stem
                       (lowercase snake_case), so the registry listing is
                       stable and greppable. Pure data-structure files
                       (e.g. iat_histogram.cc) are out of scope.
  R4 header-hygiene    Every public header under src/ must carry an include
                       guard derived from its path (SPES_<PATH>_H_) and at
                       least one Doxygen \brief.
  R5 no-raw-reinterpret
                       No reinterpret_cast in library code (src/) outside
                       src/common/binary_io.*: byte-level reinterpretation
                       is how endianness and alignment bugs sneak into the
                       deterministic file formats, so all of it is confined
                       to the one hardened serialization module.

Allowlist: a line that would fire R1, R2 or R5 is suppressed when it (or
the line directly above it) carries a justification comment of the form

    // det-ok: <non-empty reason>

The reason is mandatory; a bare "det-ok" is itself a finding.

Usage:
  tools/lint_invariants.py [--root DIR]     lint the repository (default .)
  tools/lint_invariants.py --self-test      seed one violation of every rule
                                            in a temp tree and assert each
                                            is flagged (exit 0 on success)

Exit status: 0 when clean, 1 when findings were emitted, 2 on usage error.
"""

import argparse
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Finding model
# --------------------------------------------------------------------------


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based; 0 = whole file
        self.rule = rule
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


DET_OK = re.compile(r"//\s*det-ok:\s*(\S.*)?$")


def _allowlisted(lines, idx):
    """True when lines[idx] (0-based) carries, or follows, a justified
    det-ok comment. Returns (allowed, finding_or_none) — an unjustified
    det-ok is itself reported."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = DET_OK.search(lines[probe])
        if m:
            if m.group(1):
                return True, None
            return True, (probe + 1, "det-ok comment without a justification")
    return False, None


# --------------------------------------------------------------------------
# R1: seeded RNG / no wall-clock
# --------------------------------------------------------------------------

R1_PATTERNS = [
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w.:>])time\s*\("), "time()"),
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
]

R1_ALLOWED = re.compile(r"^(src/common/rng\.(h|cc)|bench/)")

# The monotonic clock has its own, tighter confinement: the library reads
# it exactly once, in src/obs/clock.{h,cc} (everything else goes through
# spes::MonotonicSeconds so instrumentation stays greppable and
# mockable). bench/ times sweeps directly; the standalone fuzz driver
# uses it for its smoke-run timeout.
R1_STEADY = re.compile(r"std::chrono::steady_clock")
R1_STEADY_ALLOWED = re.compile(
    r"^(src/obs/clock\.(h|cc)|src/common/rng\.(h|cc)|bench/"
    r"|fuzz/standalone_driver\.cc)"
)


def lint_r1(relpath, lines):
    base_allowed = bool(R1_ALLOWED.match(relpath))
    steady_allowed = bool(R1_STEADY_ALLOWED.match(relpath))
    if base_allowed and steady_allowed:
        return []
    findings = []
    for i, line in enumerate(lines):
        code = line.split("//", 1)[0]
        hit = None
        if not base_allowed:
            for pattern, label in R1_PATTERNS:
                if pattern.search(code):
                    hit = (
                        f"{label} outside src/common/rng.* / bench timing "
                        "code; route randomness through spes::Rng "
                        "(suppress with '// det-ok: <reason>')"
                    )
                    break
        if hit is None and not steady_allowed and R1_STEADY.search(code):
            hit = (
                "std::chrono::steady_clock outside src/obs/clock.* / bench "
                "timing code; read wall time through "
                "spes::MonotonicSeconds() from obs/clock.h "
                "(suppress with '// det-ok: <reason>')"
            )
        if hit is None:
            continue
        allowed, extra = _allowlisted(lines, i)
        if extra:
            findings.append(Finding(relpath, extra[0], "R1", extra[1]))
        if not allowed:
            findings.append(Finding(relpath, i + 1, "R1", hit))
    return findings


# --------------------------------------------------------------------------
# R2: no unordered-container iteration where output ordering matters
# --------------------------------------------------------------------------

R2_DIRS = re.compile(r"^src/(metrics|sim|cluster|latency|obs)/")
R2_PATTERN = re.compile(r"\bunordered_(map|set)\b")


def lint_r2(relpath, lines):
    if not R2_DIRS.match(relpath):
        return []
    findings = []
    for i, line in enumerate(lines):
        if R2_PATTERN.search(line.split("//", 1)[0]):
            allowed, extra = _allowlisted(lines, i)
            if extra:
                findings.append(Finding(relpath, extra[0], "R2", extra[1]))
            if not allowed:
                findings.append(
                    Finding(
                        relpath,
                        i + 1,
                        "R2",
                        "unordered container in an ordered-output layer "
                        "(src/metrics, src/sim, src/cluster, src/latency, "
                        "src/obs); iteration order feeds tables/goldens/"
                        "run logs — use std::map/sorted vector, or justify "
                        "with '// det-ok: <reason>'",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# R3: registration units self-register their file stem as canonical name
# --------------------------------------------------------------------------

R3_FILES = re.compile(r"^src/policies/[^/]+\.cc$")
R3_NAME = re.compile(r'canonical_name\s*=\s*"([^"]*)"')


def lint_r3(relpath, lines):
    if not R3_FILES.match(relpath):
        return []
    stem = os.path.splitext(os.path.basename(relpath))[0]
    text = "\n".join(lines)
    if "PolicyRegistry" not in text:
        return []  # pure data structure, not a registration unit
    names = R3_NAME.findall(text)
    findings = []
    if not names:
        findings.append(
            Finding(
                relpath,
                0,
                "R3",
                "policy registration unit never sets entry.canonical_name; "
                "every src/policies/*.cc must self-register",
            )
        )
        return findings
    for name in names:
        if not re.fullmatch(r"[a-z][a-z0-9_]*", name):
            findings.append(
                Finding(
                    relpath,
                    0,
                    "R3",
                    f'canonical name "{name}" is not lowercase snake_case',
                )
            )
        elif name != stem:
            findings.append(
                Finding(
                    relpath,
                    0,
                    "R3",
                    f'canonical name "{name}" does not match the file stem '
                    f'"{stem}"; one policy per file, named after it',
                )
            )
    if len(names) > 1:
        findings.append(
            Finding(
                relpath,
                0,
                "R3",
                f"{len(names)} canonical names registered; expected exactly 1",
            )
        )
    return findings


# --------------------------------------------------------------------------
# R4: header guard + \brief
# --------------------------------------------------------------------------


def expected_guard(relpath):
    # src/sim/stream.h -> SPES_SIM_STREAM_H_
    inner = relpath[len("src/"):]
    inner = os.path.splitext(inner)[0]
    return "SPES_" + re.sub(r"[/.]", "_", inner).upper() + "_H_"


def lint_r4(relpath, lines):
    if not (relpath.startswith("src/") and relpath.endswith(".h")):
        return []
    text = "\n".join(lines)
    findings = []
    guard = expected_guard(relpath)
    ifndef = re.search(r"#ifndef\s+(\S+)", text)
    if not ifndef:
        findings.append(
            Finding(relpath, 0, "R4", f"missing include guard (expected {guard})")
        )
    elif ifndef.group(1) != guard:
        findings.append(
            Finding(
                relpath,
                0,
                "R4",
                f"include guard {ifndef.group(1)} does not match the "
                f"path-derived name {guard}",
            )
        )
    elif f"#define {guard}" not in text:
        findings.append(
            Finding(relpath, 0, "R4", f"#ifndef {guard} without #define {guard}")
        )
    if "\\brief" not in text:
        findings.append(
            Finding(
                relpath,
                0,
                "R4",
                "public header has no \\brief documentation",
            )
        )
    return findings


# --------------------------------------------------------------------------
# R5: reinterpret_cast confined to the hardened serialization module
# --------------------------------------------------------------------------

R5_PATTERN = re.compile(r"\breinterpret_cast\b")
R5_ALLOWED = re.compile(r"^src/common/binary_io\.(h|cc)$")


def lint_r5(relpath, lines):
    if not relpath.startswith("src/") or R5_ALLOWED.match(relpath):
        return []
    findings = []
    for i, line in enumerate(lines):
        if R5_PATTERN.search(line.split("//", 1)[0]):
            allowed, extra = _allowlisted(lines, i)
            if extra:
                findings.append(Finding(relpath, extra[0], "R5", extra[1]))
            if not allowed:
                findings.append(
                    Finding(
                        relpath,
                        i + 1,
                        "R5",
                        "reinterpret_cast outside src/common/binary_io.*; "
                        "byte-level reinterpretation belongs in the hardened "
                        "serialization module (or justify with "
                        "'// det-ok: <reason>')",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

RULES = (lint_r1, lint_r2, lint_r3, lint_r4, lint_r5)
SCAN_DIRS = ("src", "tests", "examples", "fuzz", "bench")
SOURCE_EXT = (".h", ".cc", ".cpp")


def lint_tree(root):
    findings = []
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXT):
                    continue
                path = os.path.join(dirpath, name)
                relpath = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    lines = f.read().splitlines()
                for rule in RULES:
                    findings.extend(rule(relpath, lines))
    return findings


# --------------------------------------------------------------------------
# Self-test: seed one violation of every rule, assert each fires
# --------------------------------------------------------------------------

SELF_TEST_TREE = {
    # R1: wall-clock + unseeded randomness outside the allowed files.
    "src/sim/bad_clock.cc": (
        "#include <ctime>\n"
        "double Now() { return time(nullptr); }\n"
        "int Roll() { return rand(); }\n"
        "// std::chrono::system_clock mentioned in a comment is fine\n"
    ),
    # R1 (negative): same constructs are fine in bench/ and when justified.
    "bench/ok_timer.cc": "long T() { return time(nullptr); }\n",
    "src/sim/ok_justified.cc": (
        "// det-ok: wall-clock overhead metric, never feeds sim results\n"
        "double Overhead() { return time(nullptr); }\n"
    ),
    # R1: det-ok without a reason is itself a finding.
    "src/sim/bad_bare_detok.cc": ("int R() { return rand(); }  // det-ok:\n"),
    # R1: the monotonic clock is confined to src/obs/clock.{h,cc} — a
    # steady_clock read anywhere else in src/obs (or src/sim) still fires.
    "src/obs/bad_clock.cc": (
        "#include <chrono>\n"
        "double Now() {\n"
        "  return std::chrono::duration<double>(\n"
        "      std::chrono::steady_clock::now().time_since_epoch()).count();\n"
        "}\n"
    ),
    "src/sim/bad_steady.cc": (
        "#include <chrono>\n"
        "auto T() { return std::chrono::steady_clock::now(); }\n"
    ),
    # R1 (negative): the sanctioned clock translation unit itself, plus a
    # steady_clock mentioned only in a comment elsewhere.
    "src/obs/clock.cc": (
        "#include <chrono>\n"
        "double MonotonicSeconds() {\n"
        "  return std::chrono::duration<double>(\n"
        "      std::chrono::steady_clock::now().time_since_epoch()).count();\n"
        "}\n"
    ),
    "src/obs/ok_clock_comment.cc": (
        "// std::chrono::steady_clock mentioned in a comment is fine\n"
        "int NotAClock() { return 0; }\n"
    ),
    # R1 covers the latency subsystem: service-time sampling must flow
    # through the seeded per-request keys, never ambient randomness.
    "src/latency/bad_unseeded_sample.cc": (
        "#include <random>\n"
        "double SampleMs() { std::random_device rd; return rd(); }\n"
    ),
    # R2 covers src/latency/ too: queue/histogram state feeds pinned
    # goldens, so iteration order must be deterministic.
    "src/latency/bad_unordered.cc": (
        "#include <unordered_map>\n"
        "std::unordered_map<int, double> finish_times;\n"
    ),
    # R2: unordered container in an ordered-output layer.
    "src/metrics/bad_unordered.cc": (
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> counters;\n"
    ),
    # R2 covers src/obs/ too: run-log objects and report tables iterate
    # members in insertion order, so parsed state must stay ordered.
    "src/obs/bad_unordered.cc": (
        "#include <unordered_set>\n"
        "std::unordered_set<int> seen_events;\n"
    ),
    # R2 (negative): justified use is allowed.
    "src/cluster/ok_unordered.cc": (
        "#include <unordered_map>  // det-ok: membership only, never iterated\n"
        "// det-ok: lookup table, results are re-sorted before emission\n"
        "std::unordered_map<int, int> lookup;\n"
    ),
    # R3: registration unit with a mismatched canonical name.
    "src/policies/bad_name.cc": (
        "void RegisterBadNamePolicy(PolicyRegistry& r) {\n"
        '  entry.canonical_name = "other_name";\n'
        "}\n"
    ),
    # R3: registration unit that never registers a canonical name.
    "src/policies/bad_silent.cc": (
        "void RegisterNothing(PolicyRegistry& r) {}\n"
    ),
    # R3 (negative): a pure data structure never touches PolicyRegistry.
    "src/policies/ok_datastructure.cc": (
        "int BinCount() { return 240; }\n"
    ),
    # R4: header with a wrong guard and no \brief.
    "src/core/bad_header.h": (
        "#ifndef WRONG_GUARD_H_\n"
        "#define WRONG_GUARD_H_\n"
        "int f();\n"
        "#endif\n"
    ),
    # R4 (negative): conforming header.
    "src/core/ok_header.h": (
        "#ifndef SPES_CORE_OK_HEADER_H_\n"
        "#define SPES_CORE_OK_HEADER_H_\n"
        "/// \\brief Fine.\n"
        "int g();\n"
        "#endif  // SPES_CORE_OK_HEADER_H_\n"
    ),
    # R5: byte reinterpretation outside the serialization module.
    "src/trace/bad_cast.cc": (
        "const char* B(const int* p) {\n"
        "  return reinterpret_cast<const char*>(p);\n"
        "}\n"
    ),
    # R5 (negative): justified use, mention in a comment, and code outside
    # src/ (the fuzz drivers take raw libFuzzer byte pointers) are fine.
    "src/sim/ok_cast.cc": (
        "// det-ok: span over POD bytes already validated by binary_io\n"
        "const char* C(const int* p) "
        "{ return reinterpret_cast<const char*>(p); }\n"
        "// a reinterpret_cast mentioned in a comment is fine\n"
    ),
    "fuzz/ok_driver_cast.cc": (
        "const char* D(const unsigned char* p) "
        "{ return reinterpret_cast<const char*>(p); }\n"
    ),
}

# (rule, path) pairs that MUST be flagged...
SELF_TEST_EXPECTED = [
    ("R1", "src/sim/bad_clock.cc"),
    ("R1", "src/sim/bad_bare_detok.cc"),
    ("R1", "src/latency/bad_unseeded_sample.cc"),
    ("R1", "src/obs/bad_clock.cc"),
    ("R1", "src/sim/bad_steady.cc"),
    ("R2", "src/metrics/bad_unordered.cc"),
    ("R2", "src/latency/bad_unordered.cc"),
    ("R2", "src/obs/bad_unordered.cc"),
    ("R3", "src/policies/bad_name.cc"),
    ("R3", "src/policies/bad_silent.cc"),
    ("R4", "src/core/bad_header.h"),
    ("R5", "src/trace/bad_cast.cc"),
]
# ...and paths that must stay clean.
SELF_TEST_CLEAN = [
    "bench/ok_timer.cc",
    "src/sim/ok_justified.cc",
    "src/obs/clock.cc",
    "src/obs/ok_clock_comment.cc",
    "src/cluster/ok_unordered.cc",
    "src/policies/ok_datastructure.cc",
    "src/core/ok_header.h",
    "src/sim/ok_cast.cc",
    "fuzz/ok_driver_cast.cc",
]


def self_test():
    with tempfile.TemporaryDirectory() as root:
        for relpath, content in SELF_TEST_TREE.items():
            path = os.path.join(root, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        findings = lint_tree(root)
        fired = {(f.rule, f.path) for f in findings}
        failures = []
        for rule, path in SELF_TEST_EXPECTED:
            if (rule, path) not in fired:
                failures.append(f"expected {rule} to fire on {path}, it did not")
        for path in SELF_TEST_CLEAN:
            hits = [f for f in findings if f.path == path]
            for f in hits:
                failures.append(f"false positive: {f}")
        if failures:
            for f in failures:
                print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
            return 1
        print(
            f"self-test OK: {len(SELF_TEST_EXPECTED)} seeded violations "
            f"flagged, {len(SELF_TEST_CLEAN)} clean files untouched "
            f"({len(findings)} findings total)"
        )
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root to lint")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="seed a violation of every rule in a temp tree and verify "
        "each is flagged",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if not os.path.isdir(args.root):
        print(f"error: not a directory: {args.root}", file=sys.stderr)
        return 2
    findings = lint_tree(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} invariant violation(s)", file=sys.stderr)
        return 1
    print("invariant lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
