#!/usr/bin/env python3
"""Run the curated .clang-tidy gate over src/ and tests/.

Reads compile_commands.json from the build directory (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON), filters the entries to the requested
source roots, and runs clang-tidy on each translation unit in parallel.
.clang-tidy sets WarningsAsErrors: '*', so any finding fails the gate.

Usage:
  tools/run_clang_tidy.py -p build               # lint src/ + tests/
  tools/run_clang_tidy.py -p build src/sim       # lint a subtree
  tools/run_clang_tidy.py -p build --binary clang-tidy-18 -j 8

Exit status: 0 clean, 1 findings, 2 setup error (missing binary or
compile_commands.json).
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

DEFAULT_ROOTS = ("src", "tests")


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        print(
            f"error: {path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
            file=sys.stderr,
        )
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def select_files(entries, repo_root, roots):
    """Translation units from the compilation database under `roots`,
    de-duplicated and sorted for a stable run order."""
    wanted = []
    prefixes = tuple(os.path.join(repo_root, r) + os.sep for r in roots)
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        if path.startswith(prefixes):
            wanted.append(path)
    return sorted(set(wanted))


def run_one(binary, build_dir, path):
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return path, proc.returncode, proc.stdout


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-p",
        "--build-dir",
        required=True,
        help="build directory containing compile_commands.json",
    )
    parser.add_argument(
        "--binary",
        default=os.environ.get("CLANG_TIDY", "clang-tidy"),
        help="clang-tidy executable (default: $CLANG_TIDY or clang-tidy)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        help="parallel clang-tidy processes",
    )
    parser.add_argument(
        "roots",
        nargs="*",
        default=list(DEFAULT_ROOTS),
        help=f"source roots to lint (default: {' '.join(DEFAULT_ROOTS)})",
    )
    args = parser.parse_args()

    if shutil.which(args.binary) is None:
        print(f"error: clang-tidy binary not found: {args.binary}",
              file=sys.stderr)
        return 2
    entries = load_compile_commands(args.build_dir)
    if entries is None:
        return 2

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = select_files(entries, repo_root, args.roots)
    if not files:
        print(
            f"error: no translation units under {args.roots} in the "
            "compilation database",
            file=sys.stderr,
        )
        return 2

    print(f"clang-tidy ({args.binary}) over {len(files)} files, "
          f"{args.jobs} jobs")
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, args.binary, args.build_dir, f)
            for f in files
        ]
        for future in concurrent.futures.as_completed(futures):
            path, code, output = future.result()
            rel = os.path.relpath(path, repo_root)
            if code != 0:
                failures += 1
                print(f"FAIL {rel}")
                sys.stdout.write(output)
            else:
                print(f"  ok {rel}")
    if failures:
        print(f"{failures}/{len(files)} files with findings",
              file=sys.stderr)
        return 1
    print("clang-tidy clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
