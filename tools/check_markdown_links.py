#!/usr/bin/env python3
"""Checks intra-repo markdown links.

Scans the repository's markdown files (README.md, ROADMAP.md, CHANGES.md,
docs/*.md) for inline links and validates every *local* target: the linked
file or directory must exist relative to the linking file, and a `#anchor`
on a markdown target must match one of its headings (GitHub slug rules,
simplified). External links (http/https/mailto) are not fetched — CI must
not flake on the network.

Usage: tools/check_markdown_links.py [repo_root]
Exit status is non-zero if any link is broken; each problem is printed as
`file:line: message`.
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes, drop
    punctuation except dashes and underscores."""
    heading = heading.strip().lower()
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def markdown_files(root: str):
    for name in ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md",
                 "PAPERS.md", "SNIPPETS.md", "ISSUE.md"):
        path = os.path.join(root, name)
        if os.path.isfile(path):
            yield path
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def collect_anchors(path: str):
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                anchors.add(slugify(match.group(1)))
    return anchors


def iter_links(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    problems = []
    checked = 0

    for md_path in markdown_files(root):
        rel_md = os.path.relpath(md_path, root)
        for lineno, target in iter_links(md_path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            link_path, _, anchor = target.partition("#")
            if link_path:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), link_path))
            else:
                resolved = md_path  # pure in-page anchor
            if not os.path.exists(resolved):
                problems.append(
                    f"{rel_md}:{lineno}: broken link '{target}' "
                    f"({os.path.relpath(resolved, root)} does not exist)")
                continue
            if anchor and resolved.endswith(".md"):
                if anchor not in collect_anchors(resolved):
                    problems.append(
                        f"{rel_md}:{lineno}: broken anchor '#{anchor}' in "
                        f"'{target}' (no such heading in "
                        f"{os.path.relpath(resolved, root)})")

    for problem in problems:
        print(problem)
    print(f"checked {checked} local links, {len(problems)} broken")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
