// spes_trace_pack: convert a trace source into the packed binary trace
// format (trace/trace_file.h) and optionally verify / simulate it through
// the streaming path.
//
// The generator source is packed function by function through
// GenerateTraceStreamed, so the full trace never exists in memory — an
// Azure-scale million-function fleet packs in ~1 GiB of RSS (the
// encoded payload), not the ~22 GiB its dense minute matrix would take.
//
// Usage:
//   spes_trace_pack --out=fleet.spt [flags]
//
// Source selection (default: generator):
//   --source=generator|csv     --csv-dir=DIR (csv source)
//   --functions=N --days=N --seed=N --rare-fraction=F (generator source)
//
// Format knobs:
//   --no-compress              store blocks raw
//   --block-minutes=N          block granularity (default 256)
//
// Post-pack actions:
//   --verify                   stream-decode the whole file and check the
//                              per-function and total invocation counts
//                              against the index/header
//   --simulate                 run a streamed scenario over the packed
//                              file and print its fleet metrics
//   --policy=SPEC              policy for --simulate (default "spes")
//   --train-days=N             train window for --simulate (default
//                              days - 2)
//   --run-log=FILE             record the --simulate run as a schema-
//                              versioned JSONL run log (obs/run_log.h);
//                              analyze it with spes_report
//
// Every run prints size/ratio stats; on Linux the peak RSS (VmHWM) is
// reported so out-of-core claims are checkable.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "obs/run_log.h"
#include "sim/scenario.h"
#include "trace/azure_csv.h"
#include "trace/generator.h"
#include "trace/trace_file.h"

namespace {

using namespace spes;

struct Args {
  std::string source = "generator";
  std::string csv_dir;
  std::string out;
  int functions = 4000;
  int days = 14;
  uint64_t seed = 20240317;
  double rare_fraction = 0.0;
  bool compress = true;
  int block_minutes = 256;
  bool verify = false;
  bool simulate = false;
  std::string policy = "spes";
  int train_days = -1;
  std::string run_log;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out=FILE [--source=generator|csv] [--csv-dir=DIR]\n"
               "       [--functions=N] [--days=N] [--seed=N]\n"
               "       [--rare-fraction=F] [--no-compress]\n"
               "       [--block-minutes=N] [--verify] [--simulate]\n"
               "       [--policy=SPEC] [--train-days=N] [--run-log=FILE]\n",
               argv0);
  return 2;
}

/// Linux peak RSS in KiB from /proc/self/status (0 when unavailable).
long PeakRssKib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

void PrintStats(const TraceFileStats& stats) {
  const double mib = 1024.0 * 1024.0;
  std::printf("packed: %llu functions x %u minutes, %llu invocations\n",
              static_cast<unsigned long long>(stats.num_functions),
              stats.num_minutes,
              static_cast<unsigned long long>(stats.total_invocations));
  std::printf(
      "  file %.2f MiB (metadata %.2f MiB, payload %.2f MiB stored / "
      "%.2f MiB raw)\n",
      static_cast<double>(stats.file_bytes) / mib,
      static_cast<double>(stats.metadata_bytes) / mib,
      static_cast<double>(stats.payload_stored_bytes) / mib,
      static_cast<double>(stats.payload_raw_bytes) / mib);
  std::printf("  dense u32 matrix would be %.2f MiB -> %.1fx smaller\n",
              static_cast<double>(stats.DenseBytes()) / mib,
              stats.CompressionRatio());
}

/// Streams every minute of the packed file and cross-checks the decoded
/// event counts against the per-function totals and the header total.
int VerifyPacked(const std::string& path) {
  auto opened = OpenTraceFile(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 opened.status().message().c_str());
    return 1;
  }
  std::unique_ptr<TraceFileSource> source = std::move(opened).ValueOrDie();
  const size_t n = source->num_functions();
  const int minutes = source->num_minutes();
  const int window = source->block_minutes();
  std::vector<uint64_t> totals(n, 0);
  std::vector<std::vector<Invocation>> buckets;
  uint64_t grand_total = 0;
  for (int begin = 0; begin < minutes; begin += window) {
    const int end = std::min(begin + window, minutes);
    const Status filled = source->FillArrivals(begin, end, &buckets);
    if (!filled.ok()) {
      std::fprintf(stderr, "verify: decode [%d,%d): %s\n", begin, end,
                   filled.message().c_str());
      return 1;
    }
    for (int i = 0; i < end - begin; ++i) {
      for (const Invocation& inv : buckets[static_cast<size_t>(i)]) {
        totals[inv.function] += inv.count;
        grand_total += inv.count;
      }
    }
  }
  for (size_t f = 0; f < n; ++f) {
    if (totals[f] != source->function_total(f)) {
      std::fprintf(stderr,
                   "verify: function %zu decoded %llu invocations but the "
                   "table records %llu\n",
                   f, static_cast<unsigned long long>(totals[f]),
                   static_cast<unsigned long long>(source->function_total(f)));
      return 1;
    }
  }
  if (grand_total != source->stats().total_invocations) {
    std::fprintf(stderr,
                 "verify: decoded %llu invocations but the header records "
                 "%llu\n",
                 static_cast<unsigned long long>(grand_total),
                 static_cast<unsigned long long>(
                     source->stats().total_invocations));
    return 1;
  }
  std::printf("verify: OK (%llu invocations across %zu functions)\n",
              static_cast<unsigned long long>(grand_total), n);
  return 0;
}

int SimulatePacked(const std::string& path, const std::string& policy,
                   int train_days, const std::string& run_log_path) {
  auto opened = OpenTraceFile(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "simulate: %s\n",
                 opened.status().message().c_str());
    return 1;
  }
  std::unique_ptr<TraceFileSource> source = std::move(opened).ValueOrDie();

  ScenarioSpec spec;
  auto parsed = ParsePolicySpec(policy);
  if (!parsed.ok()) {
    std::fprintf(stderr, "simulate: %s\n",
                 parsed.status().message().c_str());
    return 1;
  }
  spec.policy = std::move(parsed).ValueOrDie();
  spec.options.train_minutes = train_days * kMinutesPerDay;

  // Opt-in observability: stream a JSONL run log next to the simulation.
  // The recorder is write-only, so the printed metrics are bitwise
  // identical with or without --run-log.
  std::unique_ptr<FileLogSink> sink;
  std::unique_ptr<RunRecorder> recorder;
  if (!run_log_path.empty()) {
    sink = std::make_unique<FileLogSink>(run_log_path);
    if (!sink->ok()) {
      std::fprintf(stderr, "simulate: cannot open run log '%s'\n",
                   run_log_path.c_str());
      return 1;
    }
    RunRecorder::Options rec_options;
    rec_options.label = "spes_trace_pack --simulate " + path;
    recorder = std::make_unique<RunRecorder>(sink.get(), rec_options);
    recorder->Config("policy", policy);
    recorder->Config("train_days", std::to_string(train_days));
    recorder->Config("trace_file", path);
    spec.options.recorder = recorder.get();
  }

  auto run = RunScenarioStreamed(*source, spec);
  if (recorder != nullptr) {
    recorder->Finish();
    if (run.ok()) std::printf("run log: %s\n", run_log_path.c_str());
  }
  if (!run.ok()) {
    std::fprintf(stderr, "simulate: %s\n", run.status().message().c_str());
    return 1;
  }
  const FleetMetrics& metrics = run.ValueOrDie().outcome.metrics;
  std::printf(
      "simulate: policy %s over %d train days: %llu invocations, "
      "%llu cold starts, Q3-CSR %.6f, avg memory %.1f instances\n",
      metrics.policy_name.c_str(), train_days,
      static_cast<unsigned long long>(metrics.total_invocations),
      static_cast<unsigned long long>(metrics.total_cold_starts),
      metrics.q3_csr, metrics.average_memory);
  return 0;
}

int Run(const Args& args) {
  TraceFileOptions options;
  options.compress = args.compress;
  options.block_minutes = args.block_minutes;

  TraceFileStats stats;
  if (args.source == "generator") {
    GeneratorConfig config;
    config.num_functions = args.functions;
    config.days = args.days;
    config.seed = args.seed;
    config.rare_fraction = args.rare_fraction;
    const int horizon = config.days * kMinutesPerDay;

    auto created = TraceFileWriter::Create(horizon, options);
    if (!created.ok()) {
      std::fprintf(stderr, "pack: %s\n",
                   created.status().message().c_str());
      return 1;
    }
    TraceFileWriter writer = std::move(created).ValueOrDie();
    // Function-by-function: each FunctionTrace is dropped right after the
    // writer delta-encodes it, so packing is out-of-core by construction.
    const Status generated = GenerateTraceStreamed(
        config,
        [&writer](FunctionTrace&& f, const GroundTruth&) -> Status {
          return writer.Add(f.meta, f.counts);
        });
    if (!generated.ok()) {
      std::fprintf(stderr, "pack: %s\n", generated.message().c_str());
      return 1;
    }
    auto written = writer.WriteTo(args.out);
    if (!written.ok()) {
      std::fprintf(stderr, "pack: %s\n",
                   written.status().message().c_str());
      return 1;
    }
    stats = written.ValueOrDie();
  } else if (args.source == "csv") {
    if (args.csv_dir.empty()) {
      std::fprintf(stderr, "pack: --source=csv requires --csv-dir\n");
      return 2;
    }
    auto loaded = ReadAzureTraceDir(args.csv_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "pack: %s\n",
                   loaded.status().message().c_str());
      return 1;
    }
    auto written =
        WriteTraceFile(loaded.ValueOrDie(), args.out, options);
    if (!written.ok()) {
      std::fprintf(stderr, "pack: %s\n",
                   written.status().message().c_str());
      return 1;
    }
    stats = written.ValueOrDie();
  } else {
    std::fprintf(stderr, "pack: unknown --source '%s'\n",
                 args.source.c_str());
    return 2;
  }

  std::printf("wrote %s\n", args.out.c_str());
  PrintStats(stats);

  if (args.verify) {
    const int rc = VerifyPacked(args.out);
    if (rc != 0) return rc;
  }
  if (args.simulate) {
    const int train_days =
        args.train_days > 0 ? args.train_days : std::max(args.days - 2, 1);
    const int rc =
        SimulatePacked(args.out, args.policy, train_days, args.run_log);
    if (rc != 0) return rc;
  }

  const long peak_kib = PeakRssKib();
  if (peak_kib > 0) {
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(peak_kib) / 1024.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "source", &value)) {
      args.source = value;
    } else if (ParseFlag(arg, "csv-dir", &value)) {
      args.csv_dir = value;
    } else if (ParseFlag(arg, "out", &value)) {
      args.out = value;
    } else if (ParseFlag(arg, "functions", &value)) {
      args.functions = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "days", &value)) {
      args.days = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "rare-fraction", &value)) {
      args.rare_fraction = std::atof(value.c_str());
    } else if (ParseFlag(arg, "block-minutes", &value)) {
      args.block_minutes = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "policy", &value)) {
      args.policy = value;
    } else if (ParseFlag(arg, "train-days", &value)) {
      args.train_days = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "run-log", &value)) {
      args.run_log = value;
    } else if (arg == "--no-compress") {
      args.compress = false;
    } else if (arg == "--verify") {
      args.verify = true;
    } else if (arg == "--simulate") {
      args.simulate = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (args.out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return Usage(argv[0]);
  }
  return Run(args);
}
