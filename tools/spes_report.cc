// spes_report: analyze a schema-versioned JSONL run log (obs/run_log.h)
// recorded by a RunRecorder-instrumented simulation.
//
// Usage:
//   spes_report --log=FILE [--format=table|csv|json] [--perfetto=FILE]
//
//   --log=FILE        the run log to analyze (required)
//   --format=FMT      table (default, human), csv, or json
//   --perfetto=FILE   additionally export the spans as Chrome
//                     trace-event JSON, loadable in Perfetto
//                     (ui.perfetto.dev) or chrome://tracing
//
// Sections:
//   run summary    label, schema, duration, event count, truncation
//   config         key/value pairs echoed from the recorder
//   phases         wall time aggregated per span name (realize, pack,
//                  train, simulate, finish, job, ...)
//   throughput     per (slot, lane): simulated-minutes/second and cold
//                  rate derived from heartbeats
//   queue / SLO    per (slot, lane): loaded-instance and latency queue
//                  pressure derived from heartbeats
//   activity       trace-cache hits/misses/packs, decoder blocks,
//                  checkpoint saves/restores

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "obs/run_log.h"

namespace {

using namespace spes;

struct Args {
  std::string log;
  std::string format = "table";
  std::string perfetto;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --log=FILE [--format=table|csv|json]\n"
               "       [--perfetto=FILE]\n",
               argv0);
  return 2;
}

// ---------------------------------------------------------------------------
// Section emission: one titled table per section, rendered per --format.
// In json mode the sections accumulate into a single object printed at
// the end, so the output is one parseable document.
// ---------------------------------------------------------------------------

struct Report {
  std::string format;
  std::vector<std::pair<std::string, std::string>> json_sections;

  void Emit(const std::string& key, const std::string& title,
            const Table& table) {
    if (format == "json") {
      json_sections.emplace_back(key, table.ToJson());
    } else if (format == "csv") {
      std::printf("# %s\n%s\n", title.c_str(), table.ToCsv().c_str());
    } else {
      std::printf("== %s ==\n%s\n", title.c_str(),
                  table.ToString().c_str());
    }
  }

  void FinishJson() {
    if (format != "json") return;
    std::string out = "{";
    for (size_t i = 0; i < json_sections.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonEscape(json_sections[i].first) + ":" +
             json_sections[i].second;
    }
    out += "}";
    std::printf("%s\n", out.c_str());
  }
};

std::string U64(uint64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------------------
// Phase table: wall time aggregated per span name, ordered by first
// appearance (the parse preserves log order, so nesting reads top-down).
// ---------------------------------------------------------------------------

Table BuildPhaseTable(const ParsedRunLog& log) {
  struct PhaseAgg {
    std::string name;
    uint64_t count = 0;
    double total = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<PhaseAgg> phases;
  double wall = log.duration_seconds;
  for (const SpanRecord& span : log.spans) {
    wall = std::max(wall, span.t + span.dur);
    PhaseAgg* agg = nullptr;
    for (PhaseAgg& p : phases) {
      if (p.name == span.name) {
        agg = &p;
        break;
      }
    }
    if (agg == nullptr) {
      phases.push_back({span.name, 0, 0.0, span.dur, span.dur});
      agg = &phases.back();
    }
    agg->count += 1;
    agg->total += span.dur;
    agg->min = std::min(agg->min, span.dur);
    agg->max = std::max(agg->max, span.dur);
  }
  Table table({"phase", "spans", "total (s)", "mean (s)", "max (s)",
               "share", ""});
  for (const PhaseAgg& p : phases) {
    const double share = wall > 0.0 ? p.total / wall : 0.0;
    table.AddRow({p.name, U64(p.count), FormatDouble(p.total, 3),
                  FormatDouble(p.total / static_cast<double>(p.count), 4),
                  FormatDouble(p.max, 3), FormatPercent(share, 1),
                  AsciiBar(std::min(share, 1.0), 20)});
  }
  return table;
}

// ---------------------------------------------------------------------------
// Heartbeat-derived tables. Heartbeats are cumulative per (slot, lane),
// so the last one carries the lane's final counters and the first/last
// pair prices its simulation rate.
// ---------------------------------------------------------------------------

struct LaneSeries {
  int slot = 0;
  int lane = 0;
  std::vector<const HeartbeatRecord*> beats;  ///< in log order
};

std::vector<LaneSeries> GroupByLane(const ParsedRunLog& log) {
  std::vector<LaneSeries> lanes;
  for (const HeartbeatRecord& hb : log.heartbeats) {
    LaneSeries* series = nullptr;
    for (LaneSeries& s : lanes) {
      if (s.slot == hb.slot && s.lane == hb.lane) {
        series = &s;
        break;
      }
    }
    if (series == nullptr) {
      lanes.push_back({hb.slot, hb.lane, {}});
      series = &lanes.back();
    }
    series->beats.push_back(&hb);
  }
  return lanes;
}

Table BuildThroughputTable(const std::vector<LaneSeries>& lanes) {
  Table table({"slot", "lane", "minutes", "wall (s)", "sim-min/s",
               "invocations", "cold starts", "cold/10k inv"});
  for (const LaneSeries& series : lanes) {
    const HeartbeatRecord& first = *series.beats.front();
    const HeartbeatRecord& last = *series.beats.back();
    const int minutes = last.minute - first.minute;
    const double wall = last.t - first.t;
    const double rate = wall > 0.0 ? minutes / wall : 0.0;
    const double cold_rate =
        last.invocations > 0
            ? 1e4 * static_cast<double>(last.cold_starts) /
                  static_cast<double>(last.invocations)
            : 0.0;
    table.AddRow({std::to_string(series.slot), std::to_string(series.lane),
                  std::to_string(minutes), FormatDouble(wall, 3),
                  rate > 0.0 ? FormatDouble(rate, 0) : "--",
                  U64(last.invocations), U64(last.cold_starts),
                  FormatDouble(cold_rate, 2)});
  }
  return table;
}

Table BuildQueueTable(const std::vector<LaneSeries>& lanes) {
  Table table({"slot", "lane", "beats", "peak loaded", "peak queue",
               "mean queue", "wasted mem-min", "waste ratio"});
  for (const LaneSeries& series : lanes) {
    uint32_t peak_loaded = 0;
    uint32_t peak_queue = 0;
    double queue_sum = 0.0;
    for (const HeartbeatRecord* hb : series.beats) {
      peak_loaded = std::max(peak_loaded, hb->loaded_instances);
      peak_queue = std::max(peak_queue, hb->queue_depth);
      queue_sum += hb->queue_depth;
    }
    const HeartbeatRecord& last = *series.beats.back();
    const double waste =
        last.loaded_instance_minutes > 0
            ? static_cast<double>(last.wasted_memory_minutes) /
                  static_cast<double>(last.loaded_instance_minutes)
            : 0.0;
    table.AddRow({std::to_string(series.slot), std::to_string(series.lane),
                  std::to_string(series.beats.size()),
                  std::to_string(peak_loaded), std::to_string(peak_queue),
                  FormatDouble(queue_sum /
                                   static_cast<double>(series.beats.size()),
                               2),
                  U64(last.wasted_memory_minutes), FormatPercent(waste, 1)});
  }
  return table;
}

int Run(const Args& args) {
  auto parsed = ReadRunLogFile(args.log);
  if (!parsed.ok()) {
    std::fprintf(stderr, "spes_report: %s\n",
                 parsed.status().message().c_str());
    return 1;
  }
  const ParsedRunLog log = std::move(parsed).ValueOrDie();

  Report report;
  report.format = args.format;

  Table summary({"field", "value"});
  summary.AddRow({"log", args.log});
  summary.AddRow({"label", log.label.empty() ? "(unlabeled)" : log.label});
  summary.AddRow({"schema", std::to_string(log.schema)});
  summary.AddRow({"events", std::to_string(log.num_events)});
  summary.AddRow({"spans", std::to_string(log.spans.size())});
  summary.AddRow({"heartbeats", std::to_string(log.heartbeats.size())});
  summary.AddRow({"duration (s)", log.saw_run_end
                                      ? FormatDouble(log.duration_seconds, 3)
                                      : "-- (log truncated: no run_end)"});
  report.Emit("summary", "run summary", summary);

  if (!log.config.empty()) {
    Table config({"key", "value"});
    for (const auto& [key, value] : log.config) config.AddRow({key, value});
    report.Emit("config", "config", config);
  }

  if (!log.spans.empty()) {
    report.Emit("phases", "phases (wall time by span name)",
                BuildPhaseTable(log));
  }

  const std::vector<LaneSeries> lanes = GroupByLane(log);
  if (!lanes.empty()) {
    report.Emit("throughput", "throughput (from heartbeats)",
                BuildThroughputTable(lanes));
    report.Emit("queues", "memory / queue pressure (from heartbeats)",
                BuildQueueTable(lanes));
  }

  Table activity({"counter", "value"});
  activity.AddRow({"trace-cache hits", U64(log.cache.hits)});
  activity.AddRow({"trace-cache misses", U64(log.cache.misses)});
  const uint64_t lookups = log.cache.hits + log.cache.misses;
  activity.AddRow(
      {"trace-cache hit rate",
       lookups > 0
           ? FormatPercent(static_cast<double>(log.cache.hits) /
                               static_cast<double>(lookups),
                           1)
           : "--"});
  activity.AddRow({"trace-cache packs", U64(log.cache.packs)});
  activity.AddRow({"decoder blocks", U64(log.decoder.blocks)});
  activity.AddRow({"decoder invocations", U64(log.decoder.invocations)});
  activity.AddRow({"checkpoint saves", U64(log.checkpoint_saves)});
  activity.AddRow({"checkpoint restores", U64(log.checkpoint_restores)});
  report.Emit("activity", "cache / decoder / checkpoint activity", activity);

  report.FinishJson();

  if (!args.perfetto.empty()) {
    const std::string trace = ChromeTraceJson(log.spans);
    std::FILE* out = std::fopen(args.perfetto.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "spes_report: cannot open '%s'\n",
                   args.perfetto.c_str());
      return 1;
    }
    const size_t written = std::fwrite(trace.data(), 1, trace.size(), out);
    const bool closed = std::fclose(out) == 0;
    if (written != trace.size() || !closed) {
      std::fprintf(stderr, "spes_report: short write to '%s'\n",
                   args.perfetto.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote Perfetto trace: %s (%zu spans)\n",
                 args.perfetto.c_str(), log.spans.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "log", &value)) {
      args.log = value;
    } else if (ParseFlag(arg, "format", &value)) {
      args.format = value;
    } else if (ParseFlag(arg, "perfetto", &value)) {
      args.perfetto = value;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (args.log.empty()) {
    std::fprintf(stderr, "--log is required\n");
    return Usage(argv[0]);
  }
  if (args.format != "table" && args.format != "csv" &&
      args.format != "json") {
    std::fprintf(stderr, "unknown --format '%s'\n", args.format.c_str());
    return Usage(argv[0]);
  }
  return Run(args);
}
