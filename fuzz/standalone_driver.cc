// Standalone driver for the fuzz targets: lets every harness in fuzz/
// build and run without libFuzzer (e.g. under GCC, which has no
// -fsanitize=fuzzer). With Clang, CMake links the real libFuzzer runtime
// instead and this file is not compiled.
//
// The driver understands the subset of the libFuzzer CLI the CI smoke and
// local runs use, so the same command line works against either runtime:
//
//   fuzz_checkpoint corpus_dir ...        replay every corpus file
//   fuzz_checkpoint -runs=100000 dir      ... then run N mutated inputs
//   fuzz_checkpoint -max_total_time=60 dir   ... or mutate for N seconds
//   -seed=K (default 1)    deterministic mutation stream
//   -max_len=N (default 4096)  cap generated input length
//
// Mutations are the classic byte-level set (bit flip, byte set, insert,
// erase, span duplication, corpus splice) driven by a splitmix64 stream,
// so a given (corpus, seed, runs) triple replays identically.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t g_rng_state = 1;

uint64_t NextRand() {
  // splitmix64: deterministic, dependency-free.
  uint64_t z = (g_rng_state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

size_t RandBelow(size_t n) { return n == 0 ? 0 : NextRand() % n; }

using Input = std::vector<uint8_t>;

void Mutate(Input* input, const std::vector<Input>& corpus, size_t max_len) {
  const int rounds = 1 + static_cast<int>(RandBelow(8));
  for (int i = 0; i < rounds; ++i) {
    switch (RandBelow(6)) {
      case 0:  // flip one bit
        if (!input->empty()) {
          (*input)[RandBelow(input->size())] ^=
              static_cast<uint8_t>(1u << RandBelow(8));
        }
        break;
      case 1:  // overwrite one byte
        if (!input->empty()) {
          (*input)[RandBelow(input->size())] =
              static_cast<uint8_t>(NextRand());
        }
        break;
      case 2:  // insert a random byte
        if (input->size() < max_len) {
          input->insert(input->begin() + RandBelow(input->size() + 1),
                        static_cast<uint8_t>(NextRand()));
        }
        break;
      case 3:  // erase a byte
        if (!input->empty()) {
          input->erase(input->begin() + RandBelow(input->size()));
        }
        break;
      case 4: {  // duplicate a span
        if (!input->empty() && input->size() < max_len) {
          const size_t from = RandBelow(input->size());
          const size_t len =
              std::min(1 + RandBelow(16), input->size() - from);
          Input span(input->begin() + from, input->begin() + from + len);
          const size_t at = RandBelow(input->size() + 1);
          input->insert(input->begin() + at, span.begin(), span.end());
        }
        break;
      }
      case 5: {  // splice with a corpus entry
        if (!corpus.empty()) {
          const Input& other = corpus[RandBelow(corpus.size())];
          if (!other.empty()) {
            const size_t cut = RandBelow(input->size() + 1);
            const size_t take = RandBelow(other.size() + 1);
            input->resize(cut);
            input->insert(input->end(), other.begin(),
                          other.begin() + take);
          }
        }
        break;
      }
    }
  }
  if (input->size() > max_len) input->resize(max_len);
}

bool ReadFile(const std::filesystem::path& path, Input* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 0;
  long long max_total_time = 0;
  size_t max_len = 4096;
  std::vector<std::filesystem::path> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("-seed=", 0) == 0) {
      g_rng_state = static_cast<uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<size_t>(std::atoll(arg.c_str() + 9));
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore other libFuzzer flags so shared CI command lines work.
      std::fprintf(stderr, "standalone driver: ignoring flag %s\n",
                   arg.c_str());
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  // Load the corpus: every regular file in the listed files/directories.
  std::vector<Input> corpus;
  for (const auto& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& file : files) {
        Input data;
        if (ReadFile(file, &data)) corpus.push_back(std::move(data));
      }
    } else {
      Input data;
      if (ReadFile(path, &data)) corpus.push_back(std::move(data));
    }
  }

  std::fprintf(stderr, "standalone driver: %zu corpus inputs\n",
               corpus.size());
  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  if (runs == 0 && max_total_time == 0) {
    std::fprintf(stderr, "corpus replay done (no -runs/-max_total_time)\n");
    return 0;
  }

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(max_total_time > 0 ? max_total_time : 1u << 30);
  long long executed = 0;
  while ((runs <= 0 || executed < runs)) {
    if (max_total_time > 0 && (executed & 0x3ff) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    Input input =
        corpus.empty() ? Input{} : corpus[RandBelow(corpus.size())];
    Mutate(&input, corpus, max_len);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
    if ((executed % 200000) == 0) {
      std::fprintf(stderr, "  ... %lld mutated runs\n", executed);
    }
  }
  std::fprintf(stderr, "done: %lld mutated runs, no crash\n", executed);
  return 0;
}
