// Fuzzes ParseCheckpoint over raw bytes — the highest-value target: this
// parser consumes bytes straight from disk for cross-process resume, so
// truncated, corrupt or adversarial input must always yield
// InvalidArgument, never undefined behaviour or an unbounded allocation.
// Properties:
//   * A successful parse re-serializes to bytes that parse again; the
//     second serialization is byte-identical (canonical encoding).

#include <string>

#include "fuzz/fuzz_common.h"
#include "sim/stream.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  const spes::Result<spes::SimCheckpoint> parsed =
      spes::ParseCheckpoint(bytes);
  if (!parsed.ok()) {
    FUZZ_ASSERT(!parsed.status().message().empty());
    return 0;
  }

  const std::string reserialized =
      spes::SerializeCheckpoint(parsed.ValueOrDie());
  const auto reparsed = spes::ParseCheckpoint(reserialized);
  FUZZ_ASSERT(reparsed.ok());
  FUZZ_ASSERT(spes::SerializeCheckpoint(reparsed.ValueOrDie()) ==
              reserialized);
  return 0;
}
