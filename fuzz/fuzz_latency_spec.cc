// Fuzzes ParseLatencySpec (the `<model> @ queue{k=v,...}` grammar) and,
// when the block parses, the registry-backed semantic validation.
// Properties checked beyond "no crash":
//   * Format(Parse(x)) reparses, and the canonical form is a fixed point.
//   * ValidateLatencySpec never crashes on a parsed spec — it either
//     accepts the block or returns a precise Status.

#include <string>

#include "fuzz/fuzz_common.h"
#include "latency/latency.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  const spes::Result<spes::LatencySpec> parsed = spes::ParseLatencySpec(text);
  if (!parsed.ok()) {
    FUZZ_ASSERT(!parsed.status().message().empty());
    return 0;
  }

  const std::string canonical =
      spes::FormatLatencySpec(parsed.ValueOrDie());
  const spes::Result<spes::LatencySpec> reparsed =
      spes::ParseLatencySpec(canonical);
  FUZZ_ASSERT(reparsed.ok());
  FUZZ_ASSERT(reparsed.ValueOrDie() == parsed.ValueOrDie());
  FUZZ_ASSERT(spes::FormatLatencySpec(reparsed.ValueOrDie()) == canonical);

  // Semantic validation must be total over parsed specs.
  const spes::Status valid = spes::ValidateLatencySpec(parsed.ValueOrDie());
  if (!valid.ok()) {
    FUZZ_ASSERT(!valid.message().empty());
  }
  return 0;
}
