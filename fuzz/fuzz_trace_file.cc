// Fuzzes TraceFileSource::FromBytes over raw bytes — the packed trace
// parser consumes whole files from disk, so truncated, corrupt or
// adversarial images must always yield InvalidArgument with a message,
// never undefined behaviour, an unbounded allocation or a crash.
// Properties:
//   * A successful parse decodes every minute without tripping the lazy
//     block validator into UB (decode errors are fine — they must be
//     clean InvalidArgument statuses).
//   * A materialized prefix re-packs into an image that parses and
//     reports the same function count.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/fuzz_common.h"
#include "trace/trace.h"
#include "trace/trace_file.h"
#include "trace/trace_source.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  auto parsed = spes::TraceFileSource::FromBytes(bytes);
  if (!parsed.ok()) {
    FUZZ_ASSERT(parsed.status().code() ==
                spes::StatusCode::kInvalidArgument);
    FUZZ_ASSERT(!parsed.status().message().empty());
    return 0;
  }
  std::unique_ptr<spes::TraceFileSource> source =
      std::move(parsed).ValueOrDie();

  // Metadata parsed: geometry must be sane before any decode happens.
  FUZZ_ASSERT(source->num_minutes() > 0);
  FUZZ_ASSERT(source->block_minutes() > 0);

  // Keep the work bounded: a hand-crafted header cannot claim a huge
  // geometry anyway (the index/table would not fit the image and the
  // parse above would have failed), but cap defensively.
  if (source->num_minutes() > 1 << 16 || source->num_functions() > 1 << 12) {
    return 0;
  }

  // Stream-decode the whole horizon in misaligned windows. Errors are
  // legitimate (payload bytes are attacker-controlled and validated
  // lazily) but must be clean InvalidArgument with a message.
  bool decode_failed = false;
  std::vector<std::vector<spes::Invocation>> buckets;
  const int window = std::max(1, source->block_minutes() - 1);
  for (int begin = 0; begin < source->num_minutes(); begin += window) {
    const int end = std::min(begin + window, source->num_minutes());
    const spes::Status filled = source->FillArrivals(begin, end, &buckets);
    if (!filled.ok()) {
      FUZZ_ASSERT(filled.code() == spes::StatusCode::kInvalidArgument);
      FUZZ_ASSERT(!filled.message().empty());
      decode_failed = true;
      break;
    }
    for (int i = 0; i < end - begin; ++i) {
      for (const spes::Invocation& inv : buckets[static_cast<size_t>(i)]) {
        FUZZ_ASSERT(inv.function < source->num_functions());
        FUZZ_ASSERT(inv.count > 0);
      }
    }
  }
  if (!decode_failed) {
    // Materialize + re-pack: the round trip must parse and preserve the
    // population shape.
    auto prefix = source->MaterializePrefix(
        std::min(source->num_minutes(), source->block_minutes()));
    FUZZ_ASSERT(prefix.ok());
    auto writer = spes::TraceFileWriter::Create(
        prefix.ValueOrDie().num_minutes());
    FUZZ_ASSERT(writer.ok());
    for (size_t f = 0; f < prefix.ValueOrDie().num_functions(); ++f) {
      const spes::FunctionTrace& fn = prefix.ValueOrDie().function(f);
      FUZZ_ASSERT(writer.ValueOrDie().Add(fn.meta, fn.counts).ok());
    }
    auto repacked = writer.ValueOrDie().ToBytes();
    FUZZ_ASSERT(repacked.ok());
    auto reparsed =
        spes::TraceFileSource::FromBytes(std::move(repacked).ValueOrDie());
    FUZZ_ASSERT(reparsed.ok());
    FUZZ_ASSERT(reparsed.ValueOrDie()->num_functions() ==
                source->num_functions());
  }
  return 0;
}
