// Shared helpers for the fuzz harnesses in this directory.
//
// Each harness checks semantic properties of a parser, not just
// "no crash": a successful parse must survive a format -> reparse round
// trip bit-for-bit, because the golden pipeline relies on spec strings
// and checkpoint bytes being canonical. Property violations abort so
// both libFuzzer and the standalone driver treat them as crashes.

#ifndef SPES_FUZZ_FUZZ_COMMON_H_
#define SPES_FUZZ_FUZZ_COMMON_H_

#include <cstdio>
#include <cstdlib>

/// \brief Aborts (reported as a fuzzer crash) when a parser property is
/// violated, printing the failing expression first.
#define FUZZ_ASSERT(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                         \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#endif  // SPES_FUZZ_FUZZ_COMMON_H_
