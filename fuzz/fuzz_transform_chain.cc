// Fuzzes ParseTransformChain (the '|'-joined `name{k=v,...}` chain
// grammar) plus the transform registry's compile step. Properties:
//   * Format(Parse(x)) reparses and is a fixed point.
//   * TransformRegistry::Create on every parsed step either compiles or
//     returns a precise Status — never crashes. (Transforms are compiled,
//     not applied: apply-time semantics are covered by transform_test.)

#include <string>
#include <vector>

#include "fuzz/fuzz_common.h"
#include "trace/transform.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  const spes::Result<std::vector<spes::TransformSpec>> parsed =
      spes::ParseTransformChain(text);
  if (!parsed.ok()) {
    FUZZ_ASSERT(!parsed.status().message().empty());
    return 0;
  }

  const std::string canonical =
      spes::FormatTransformChain(parsed.ValueOrDie());
  const auto reparsed = spes::ParseTransformChain(canonical);
  FUZZ_ASSERT(reparsed.ok());
  FUZZ_ASSERT(spes::FormatTransformChain(reparsed.ValueOrDie()) ==
              canonical);

  for (const spes::TransformSpec& spec : parsed.ValueOrDie()) {
    const auto compiled = spes::TransformRegistry::Global().Create(spec);
    if (!compiled.ok()) {
      FUZZ_ASSERT(!compiled.status().message().empty());
    }
  }
  return 0;
}
