// Fuzzes ParseNodeEventTimeline (cluster lifecycle events in the
// '|'-joined `kind{at=..,node=..}` grammar). Properties:
//   * Format(Parse(x)) reparses and is a fixed point, so a timeline that
//     entered a ClusterSpec can always be echoed back verbatim.

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "fuzz/fuzz_common.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  const spes::Result<std::vector<spes::NodeEvent>> parsed =
      spes::ParseNodeEventTimeline(text);
  if (!parsed.ok()) {
    FUZZ_ASSERT(!parsed.status().message().empty());
    return 0;
  }

  const std::string canonical =
      spes::FormatNodeEventTimeline(parsed.ValueOrDie());
  const auto reparsed = spes::ParseNodeEventTimeline(canonical);
  FUZZ_ASSERT(reparsed.ok());
  FUZZ_ASSERT(spes::FormatNodeEventTimeline(reparsed.ValueOrDie()) ==
              canonical);
  return 0;
}
