// Fuzzes the run-log stack (obs/run_log.h): the hardened one-line JSON
// parser and the JSONL run-log reader. Run logs round-trip through disk,
// so both parsers are untrusted-input surfaces. Properties checked
// beyond "no crash":
//   * Every parse failure carries a non-empty, line-numbered message.
//   * A successfully parsed log has a valid schema and internally
//     consistent record counts.
//   * Re-rendering the parsed spans as Chrome trace JSON never crashes
//     and itself parses as a single JSON document.

#include <string>

#include "fuzz/fuzz_common.h"
#include "obs/run_log.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // The single-document JSON parser must be total over arbitrary bytes.
  const spes::Result<spes::JsonValue> json = spes::ParseJson(text);
  if (!json.ok()) {
    FUZZ_ASSERT(!json.status().message().empty());
  }

  const spes::Result<spes::ParsedRunLog> parsed = spes::ParseRunLog(text);
  if (!parsed.ok()) {
    FUZZ_ASSERT(!parsed.status().message().empty());
    return 0;
  }

  const spes::ParsedRunLog& log = parsed.ValueOrDie();
  FUZZ_ASSERT(log.schema == spes::kRunLogSchemaVersion);
  FUZZ_ASSERT(log.num_events >= 1);  // at least the run_start header
  FUZZ_ASSERT(log.spans.size() <= log.num_events);
  FUZZ_ASSERT(log.heartbeats.size() <= log.num_events);

  // The Perfetto export is pure rendering: total over parsed spans, and
  // its output must be one well-formed JSON document.
  const std::string trace = spes::ChromeTraceJson(log.spans);
  const spes::Result<spes::JsonValue> trace_json = spes::ParseJson(trace);
  FUZZ_ASSERT(trace_json.ok());
  FUZZ_ASSERT(trace_json.ValueOrDie().kind ==
              spes::JsonValue::Kind::kObject);
  return 0;
}
