// Fuzzes ParsePolicySpec (the `name{k=v,...}` grammar) and, when the
// spec names a registered policy, the registry's parameter validation and
// factory path. Properties checked beyond "no crash":
//   * Format(Parse(x)) reparses, and the canonical form is a fixed point.
//   * PolicyRegistry::Create never crashes on a parsed spec — it either
//     builds a policy or returns a precise Status.

#include <string>

#include "core/policy_registry.h"
#include "fuzz/fuzz_common.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  const spes::Result<spes::PolicySpec> parsed = spes::ParsePolicySpec(text);
  if (!parsed.ok()) {
    FUZZ_ASSERT(!parsed.status().message().empty());
    return 0;
  }

  const std::string canonical = spes::FormatPolicySpec(parsed.ValueOrDie());
  const spes::Result<spes::PolicySpec> reparsed =
      spes::ParsePolicySpec(canonical);
  FUZZ_ASSERT(reparsed.ok());
  FUZZ_ASSERT(spes::FormatPolicySpec(reparsed.ValueOrDie()) == canonical);

  // Registry validation + factory must be total over parsed specs.
  const auto policy =
      spes::PolicyRegistry::Global().Create(parsed.ValueOrDie());
  if (!policy.ok()) {
    FUZZ_ASSERT(!policy.status().message().empty());
  }
  return 0;
}
